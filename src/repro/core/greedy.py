"""Inc-Greedy: the (1 − 1/e) greedy heuristic for TOPS (Section 3.3).

Inc-Greedy maximises the monotone submodular utility by repeatedly adding the
site with the largest marginal gain.  Three equivalent evaluation strategies
are provided:

* ``update_strategy="incremental"`` — the paper's Algorithm 1: per-site
  marginal utilities ``U_θ(s_i)`` and per-pair residual gains ``α_ji`` are
  maintained and updated only for the trajectories covered by the newly
  selected site (and the sites covering those trajectories);
* ``update_strategy="recompute"`` — each iteration recomputes all marginal
  gains as ``Σ_j max(0, ψ(T_j, s_i) − U_j)`` with one vectorised NumPy pass;
* ``update_strategy="lazy"`` — CELF-style lazy greedy (:class:`LazyGreedy`):
  cached marginal gains are valid upper bounds by submodularity, so each
  iteration only re-evaluates sites popped from a max-heap until the top
  entry is fresh.  On sparse instances this evaluates a small fraction of
  the ``k·n`` gains the other strategies touch.

All strategies return identical selections (ties broken by site weight, then
by the larger site label, per the paper).  The incremental/recompute
strategies need a dense :class:`~repro.core.coverage.CoverageIndex`;
``"lazy"`` additionally runs on a
:class:`~repro.core.coverage.SparseCoverageIndex`, which is the fast path
for realistic (sparse) coverage.  The class also supports an initial seed of
*existing services* (Section 7.3) and per-site capacities (used by the
TOPS-CAPACITY driver in ``repro.core.variants``).
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro.core.coverage import CoverageIndex, SparseCoverageIndex, serve_top_capacity
from repro.core.query import TOPSQuery, TOPSResult
from repro.utils.timer import Timer
from repro.utils.validation import require

__all__ = ["IncGreedy", "LazyGreedy", "greedy_max_coverage_columns"]


class IncGreedy:
    """Greedy TOPS solver operating on a :class:`CoverageIndex`.

    Parameters
    ----------
    coverage:
        The coverage structures built for the query's (τ, ψ).
    update_strategy:
        ``"incremental"`` (Algorithm 1 of the paper) or ``"recompute"``.
    """

    algorithm_name = "inc-greedy"

    def __init__(
        self,
        coverage: CoverageIndex | SparseCoverageIndex,
        update_strategy: str = "incremental",
    ) -> None:
        require(
            update_strategy in ("incremental", "recompute", "lazy"),
            "update_strategy must be 'incremental', 'recompute' or 'lazy'",
        )
        require(
            update_strategy == "lazy" or not getattr(coverage, "is_sparse", False),
            "a SparseCoverageIndex requires update_strategy='lazy'",
        )
        self.coverage = coverage
        self.update_strategy = update_strategy

    # ------------------------------------------------------------------ #
    def select(
        self,
        k: int,
        existing_columns: Sequence[int] = (),
        capacities: np.ndarray | None = None,
    ) -> tuple[list[int], np.ndarray, list[float]]:
        """Select *k* site columns greedily.

        Parameters
        ----------
        k:
            Number of sites to add (on top of any existing services).
        existing_columns:
            Columns of already-operating services (Section 7.3); they seed the
            per-trajectory utilities but are not re-selected nor counted in k.
        capacities:
            Optional per-site capacities (max number of trajectories a site
            may serve).  When provided, a site's marginal utility is the sum
            of its largest ``cap`` per-trajectory gains (Section 7.2).

        Returns
        -------
        (selected_columns, per_trajectory_utility, marginal_gains)
            ``selected_columns`` — site *column indices* (not node ids) in
            selection order; map to node ids via ``coverage.site_labels``.
            ``per_trajectory_utility`` — final ψ-utility per trajectory
            (length m), including any existing-service seed utility.
            ``marginal_gains`` — the gain each selection contributed, in
            the same order.  The selection may be shorter than k when no
            site has positive marginal gain left.  A greedy selection for
            k is always a prefix of the selection for any larger k.
        """
        require(k >= 1, "k must be >= 1")
        if self.update_strategy == "lazy":
            return LazyGreedy(self.coverage).select(
                k, existing_columns=existing_columns, capacities=capacities
            )
        scores = self.coverage.scores
        num_trajectories, num_sites = scores.shape
        utilities = np.zeros(num_trajectories, dtype=np.float64)
        if existing_columns:
            utilities = np.max(scores[:, list(existing_columns)], axis=1)
        forbidden = set(int(c) for c in existing_columns)

        if self.update_strategy == "recompute" or capacities is not None:
            return self._select_recompute(k, utilities, forbidden, capacities)
        return self._select_incremental(k, utilities, forbidden)

    # ------------------------------------------------------------------ #
    def _select_recompute(
        self,
        k: int,
        utilities: np.ndarray,
        forbidden: set[int],
        capacities: np.ndarray | None,
    ) -> tuple[list[int], np.ndarray, list[float]]:
        scores = self.coverage.scores
        weights = self.coverage.site_weights
        num_sites = scores.shape[1]
        selected: list[int] = []
        gains: list[float] = []
        for _ in range(min(k, num_sites - len(forbidden))):
            residual = np.maximum(scores - utilities[:, np.newaxis], 0.0)
            if capacities is None:
                marginal = residual.sum(axis=0)
            else:
                marginal = _capacity_limited_marginals(residual, capacities)
            if forbidden:
                marginal[list(forbidden)] = -np.inf
            best = _argmax_with_tie_break(marginal, weights)
            if marginal[best] <= 0.0 and selected:
                break
            selected.append(int(best))
            forbidden.add(int(best))
            gains.append(float(marginal[best]))
            if capacities is None:
                utilities = np.maximum(utilities, scores[:, best])
            else:
                utilities = _apply_capacity_assignment(
                    utilities, scores[:, best], int(capacities[best])
                )
        return selected, utilities, gains

    # ------------------------------------------------------------------ #
    def _select_incremental(
        self, k: int, utilities: np.ndarray, forbidden: set[int]
    ) -> tuple[list[int], np.ndarray, list[float]]:
        """Algorithm 1 of the paper with α_ji maintained implicitly.

        ``alpha[j, i] = max(0, ψ(T_j, s_i) − U_j)`` is represented by the
        current ``utilities`` vector; per-site marginal utilities are kept in
        ``marginal`` and decremented when a covered trajectory's utility
        improves.
        """
        scores = self.coverage.scores
        weights = self.coverage.site_weights
        num_trajectories, num_sites = scores.shape
        # U_1(s_i) = w_i adjusted for any existing-service seed utilities
        marginal = np.maximum(scores - utilities[:, np.newaxis], 0.0).sum(axis=0)
        selected: list[int] = []
        gains: list[float] = []
        for _ in range(min(k, num_sites - len(forbidden))):
            masked = marginal.copy()
            if forbidden:
                masked[list(forbidden)] = -np.inf
            best = _argmax_with_tie_break(masked, weights)
            best_gain = float(masked[best])
            if best_gain <= 0.0 and selected:
                break
            selected.append(int(best))
            forbidden.add(int(best))
            gains.append(best_gain)
            covered = self.coverage.trajectories_covered(best)
            if len(covered) == 0:
                continue
            new_util = scores[covered, best]
            improved_mask = new_util > utilities[covered]
            improved = covered[improved_mask]
            if len(improved) == 0:
                continue
            old_values = utilities[improved]
            new_values = scores[improved, best]
            # update marginal utility of every site covering an improved
            # trajectory: its residual gain for T_j drops from
            # max(0, ψ_ji − old) to max(0, ψ_ji − new)
            affected_scores = scores[improved, :]
            old_alpha = np.maximum(affected_scores - old_values[:, np.newaxis], 0.0)
            new_alpha = np.maximum(affected_scores - new_values[:, np.newaxis], 0.0)
            marginal -= (old_alpha - new_alpha).sum(axis=0)
            utilities[improved] = new_values
        return selected, utilities, gains

    # ------------------------------------------------------------------ #
    def solve(self, query: TOPSQuery, existing_sites: Sequence[int] = ()) -> TOPSResult:
        """Run the greedy selection and wrap it in a :class:`TOPSResult`.

        Parameters
        ----------
        query:
            The ``(k, τ, ψ)`` query; τ (kilometres) and ψ must match what
            the coverage index was built with — only ``k`` is read here.
        existing_sites:
            Site labels (node ids) of already-operating services; they must
            be present among the coverage index's sites and seed the
            utilities without counting towards k.

        Returns
        -------
        TOPSResult
            ``sites`` are node ids in selection order; ``utility`` is the
            total ψ-utility (for the binary ψ, the number of covered
            trajectories); ``metadata`` carries the per-step marginal gains
            and the update strategy used.
        """
        with Timer() as timer:
            existing_columns = (
                self.coverage.columns_for_labels(existing_sites) if existing_sites else []
            )
            columns, utilities, gains = self.select(
                query.k, existing_columns=existing_columns
            )
        sites = tuple(int(self.coverage.site_labels[c]) for c in columns)
        return TOPSResult(
            sites=sites,
            utility=float(np.sum(utilities)),
            per_trajectory_utility=tuple(float(u) for u in utilities),
            elapsed_seconds=timer.elapsed,
            algorithm=self.algorithm_name,
            metadata={"marginal_gains": gains, "update_strategy": self.update_strategy},
        )


class LazyGreedy:
    """CELF lazy greedy: Inc-Greedy's selections at a fraction of the work.

    By submodularity a site's marginal gain only shrinks as the selection
    grows, so gains computed in earlier iterations are valid upper bounds.
    The solver keeps every site in a max-heap keyed by its (possibly stale)
    cached gain with the paper's tie-break (gain, then site weight, then the
    larger site column); each iteration pops entries, re-evaluating stale
    ones, until the top of the heap is fresh — that site is the exact argmax,
    so the selection is identical to :class:`IncGreedy`'s.

    Works on both a dense :class:`~repro.core.coverage.CoverageIndex` and a
    :class:`~repro.core.coverage.SparseCoverageIndex`; with the sparse index a
    gain re-evaluation touches only the site's covered trajectories, which is
    what makes this the fast engine for realistic (sparse) instances.

    ``last_num_evaluations`` records how many marginal gains the previous
    :meth:`select` call actually computed (the eager strategies always
    compute ``k·n``).
    """

    algorithm_name = "lazy-greedy"

    def __init__(self, coverage: CoverageIndex | SparseCoverageIndex) -> None:
        self.coverage = coverage
        self.update_strategy = "lazy"
        self.last_num_evaluations = 0

    # ------------------------------------------------------------------ #
    def select(
        self,
        k: int,
        existing_columns: Sequence[int] = (),
        capacities: np.ndarray | None = None,
    ) -> tuple[list[int], np.ndarray, list[float]]:
        """Select *k* site columns lazily; same contract as :meth:`IncGreedy.select`."""
        require(k >= 1, "k must be >= 1")
        coverage = self.coverage
        num_sites = coverage.num_sites
        utilities = np.zeros(coverage.num_trajectories, dtype=np.float64)
        forbidden = set(int(c) for c in existing_columns)
        for col in forbidden:
            utilities = coverage.absorb(utilities, col)
        weights = coverage.site_weights
        caps = None if capacities is None else np.asarray(capacities)

        def capacity_of(col: int) -> int | None:
            return None if caps is None else int(caps[col])

        # exact initial gains for every candidate site (one vectorised pass
        # in the uncapacitated case)
        if caps is None:
            initial = coverage.marginal_gains(utilities)
        else:
            initial = np.asarray(
                [
                    coverage.marginal_gain(col, utilities, capacity_of(col))
                    for col in range(num_sites)
                ]
            )
        evaluations = num_sites

        heap = [
            (-initial[col], -weights[col], -col)
            for col in range(num_sites)
            if col not in forbidden
        ]
        heapq.heapify(heap)
        stamp = np.zeros(num_sites, dtype=np.int64)  # iteration of last evaluation
        iteration = 0
        selected: list[int] = []
        gains: list[float] = []
        limit = min(k, num_sites - len(forbidden))
        while heap and len(selected) < limit:
            neg_gain, neg_weight, neg_col = heapq.heappop(heap)
            col = int(-neg_col)
            if stamp[col] == iteration:
                gain = float(-neg_gain)
                if gain <= 0.0 and selected:
                    break
                selected.append(col)
                gains.append(gain)
                utilities = coverage.absorb(utilities, col, capacity_of(col))
                iteration += 1
            else:
                gain = coverage.marginal_gain(col, utilities, capacity_of(col))
                evaluations += 1
                stamp[col] = iteration
                heapq.heappush(heap, (-gain, neg_weight, neg_col))
        self.last_num_evaluations = evaluations
        return selected, utilities, gains

    # ------------------------------------------------------------------ #
    def solve(self, query: TOPSQuery, existing_sites: Sequence[int] = ()) -> TOPSResult:
        """Run the lazy selection and wrap it in a :class:`TOPSResult`."""
        with Timer() as timer:
            existing_columns = (
                self.coverage.columns_for_labels(existing_sites) if existing_sites else []
            )
            columns, utilities, gains = self.select(
                query.k, existing_columns=existing_columns
            )
        sites = tuple(int(self.coverage.site_labels[c]) for c in columns)
        return TOPSResult(
            sites=sites,
            utility=float(np.sum(utilities)),
            per_trajectory_utility=tuple(float(u) for u in utilities),
            elapsed_seconds=timer.elapsed,
            algorithm=self.algorithm_name,
            metadata={
                "marginal_gains": gains,
                "update_strategy": self.update_strategy,
                "num_gain_evaluations": self.last_num_evaluations,
            },
        )


# ---------------------------------------------------------------------- #
def greedy_max_coverage_columns(
    scores: np.ndarray, k: int
) -> tuple[list[int], np.ndarray]:
    """Standalone greedy max-coverage used by baselines and tests.

    Selects *k* columns of the ``(m, n)`` score matrix maximising
    ``Σ_j max_{i in Q} scores[j, i]`` greedily; returns the chosen columns and
    the final per-row utilities.
    """
    utilities = np.zeros(scores.shape[0])
    chosen: list[int] = []
    available = set(range(scores.shape[1]))
    for _ in range(min(k, scores.shape[1])):
        residual = np.maximum(scores - utilities[:, np.newaxis], 0.0)
        marginal = residual.sum(axis=0)
        marginal[[c for c in range(scores.shape[1]) if c not in available]] = -np.inf
        best = int(np.argmax(marginal))
        chosen.append(best)
        available.discard(best)
        utilities = np.maximum(utilities, scores[:, best])
    return chosen, utilities


def _argmax_with_tie_break(marginal: np.ndarray, weights: np.ndarray) -> int:
    """Paper's tie-break: largest marginal, then largest weight, then largest index."""
    best_gain = np.max(marginal)
    candidates = np.flatnonzero(marginal == best_gain)
    if len(candidates) == 1:
        return int(candidates[0])
    candidate_weights = weights[candidates]
    best_weight = np.max(candidate_weights)
    heaviest = candidates[candidate_weights == best_weight]
    return int(heaviest.max())


def _capacity_limited_marginals(residual: np.ndarray, capacities: np.ndarray) -> np.ndarray:
    """Marginal utility when each site can serve at most ``cap`` trajectories.

    For every site column, sum its largest ``cap`` residual gains
    (Section 7.2: α_i = min(|TC|, cap) largest marginal utilities).
    """
    num_trajectories, num_sites = residual.shape
    marginal = np.empty(num_sites)
    for col in range(num_sites):
        cap = int(capacities[col])
        if cap <= 0:
            marginal[col] = 0.0
            continue
        column = residual[:, col]
        if cap >= num_trajectories:
            marginal[col] = column.sum()
        else:
            top = np.partition(column, num_trajectories - cap)[num_trajectories - cap :]
            marginal[col] = top.sum()
    return marginal


def _apply_capacity_assignment(
    utilities: np.ndarray, site_scores: np.ndarray, capacity: int
) -> np.ndarray:
    """Serve the ``capacity`` trajectories with the largest gains from a new site."""
    if capacity >= len(site_scores):
        return np.maximum(utilities, site_scores)
    return serve_top_capacity(utilities, slice(None), site_scores, capacity)
