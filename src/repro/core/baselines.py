"""Naive placement baselines.

The introduction of the paper motivates trajectory-aware placement by showing
that (a) picking the k most-frequented locations ignores the overlap between
their served trajectories, and (b) placing facilities only at static demand
points (homes/offices) misses commuters entirely.  These baselines make that
comparison measurable:

* :func:`top_k_by_traffic` — pick the k sites whose covers are largest,
  ignoring overlap (the "frequency" heuristic of Fig. 1);
* :func:`random_sites` — uniformly random k sites;
* :func:`static_demand_greedy` — greedy placement that only credits a site
  for trajectories that *start or end* within τ of it (the static-user
  proxy).
"""

from __future__ import annotations

import numpy as np

from repro.core.coverage import CoverageIndex
from repro.core.query import TOPSQuery, TOPSResult
from repro.utils.rng import ensure_rng
from repro.utils.timer import Timer

__all__ = ["top_k_by_traffic", "random_sites", "static_demand_greedy"]


def top_k_by_traffic(coverage: CoverageIndex, query: TOPSQuery) -> TOPSResult:
    """Select the k sites with the largest individual weights (no overlap logic)."""
    with Timer() as timer:
        weights = coverage.site_weights
        columns = list(np.argsort(weights)[::-1][: query.k])
        utilities = coverage.per_trajectory_utility(columns)
    return TOPSResult(
        sites=tuple(int(coverage.site_labels[c]) for c in columns),
        utility=float(np.sum(utilities)),
        per_trajectory_utility=tuple(float(u) for u in utilities),
        elapsed_seconds=timer.elapsed,
        algorithm="top-k-by-traffic",
    )


def random_sites(
    coverage: CoverageIndex, query: TOPSQuery, seed: int | None = None
) -> TOPSResult:
    """Select k sites uniformly at random (sanity-check baseline)."""
    rng = ensure_rng(seed)
    with Timer() as timer:
        columns = list(
            rng.choice(coverage.num_sites, size=min(query.k, coverage.num_sites), replace=False)
        )
        utilities = coverage.per_trajectory_utility(columns)
    return TOPSResult(
        sites=tuple(int(coverage.site_labels[c]) for c in columns),
        utility=float(np.sum(utilities)),
        per_trajectory_utility=tuple(float(u) for u in utilities),
        elapsed_seconds=timer.elapsed,
        algorithm="random",
    )


def static_demand_greedy(
    coverage: CoverageIndex,
    query: TOPSQuery,
    endpoint_detours: np.ndarray,
) -> TOPSResult:
    """Greedy placement using only trajectory endpoints as demand.

    Parameters
    ----------
    endpoint_detours:
        ``(m, n)`` matrix of round-trip distances from each trajectory's
        origin/destination (whichever is closer) to each site.  The utility a
        site earns from a trajectory is ψ of that endpoint distance — i.e.
        the classic static-user facility-location objective.  The *reported*
        utility, however, is measured with the true trajectory-aware scores
        so the baseline is comparable with TOPS algorithms.
    """
    from repro.core.greedy import greedy_max_coverage_columns

    with Timer() as timer:
        static_scores = np.asarray(
            coverage.preference(endpoint_detours, query.tau_km), dtype=float
        )
        columns, _ = greedy_max_coverage_columns(static_scores, query.k)
        utilities = coverage.per_trajectory_utility(columns)
    return TOPSResult(
        sites=tuple(int(coverage.site_labels[c]) for c in columns),
        utility=float(np.sum(utilities)),
        per_trajectory_utility=tuple(float(u) for u in utilities),
        elapsed_seconds=timer.elapsed,
        algorithm="static-demand",
    )
