"""Distance oracle: site-to-trajectory detours.

The central geometric quantity of the paper is the round-trip detour

``dr(T_j, s_i) = min_{v_k, v_l ∈ T_j} d(v_k, s_i) + d(s_i, v_l) − d(v_k, v_l)``

— the extra distance a user on trajectory ``T_j`` travels to visit site
``s_i`` and resume the trip.  Following Section 3.2, the oracle pre-computes
``d(s → v)`` and ``d(v → s)`` for every candidate site via multi-source
Dijkstra (forward and reverse graph).  The inner distance ``d(v_k, v_l)`` is
taken as the *along-trajectory* distance between the k-th and l-th visited
nodes (the distance the user actually travels), which allows an O(l)
prefix-minimum evaluation per trajectory instead of the naive O(l²):

``dr = min_l [ min_{k <= l} (d(v_k → s) + cum_k) + d(s → v_l) − cum_l ]``

Both the vectorised prefix-min form and the naive O(l²) reference
(:meth:`DistanceOracle.detour_bruteforce`) are provided; tests assert they
agree.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.network.graph import RoadNetwork
from repro.network.shortest_path import ShortestPathEngine
from repro.trajectory.model import Trajectory, TrajectoryDataset
from repro.utils.validation import require

__all__ = ["DistanceOracle"]


class DistanceOracle:
    """Pre-computed site distance tables and detour evaluation.

    Parameters
    ----------
    network:
        The road network.
    sites:
        Candidate site node ids (the set S of the paper).  Order defines the
        column order of detour matrices.
    engine:
        Optional pre-built shortest-path engine over *network*; without one
        a fresh engine (two CSR conversions) is constructed for the sweeps.

    Notes
    -----
    The pre-computation costs two multi-source Dijkstra sweeps
    (``O(|S| · |E| log |V|)``) and stores two dense ``(|S|, |V|)`` tables —
    the same asymptotic cost the paper reports for Inc-Greedy's offline step.
    """

    def __init__(
        self,
        network: RoadNetwork,
        sites: Sequence[int],
        engine: ShortestPathEngine | None = None,
    ) -> None:
        require(len(sites) > 0, "need at least one candidate site")
        require(len(set(sites)) == len(sites), "candidate sites must be unique")
        for site in sites:
            require(network.has_node(site), f"site {site} is not a network node")
        self.network = network
        self.sites = np.asarray(sites, dtype=np.int64)
        self.site_index = {int(site): idx for idx, site in enumerate(self.sites)}
        if engine is None:
            engine = ShortestPathEngine(network)
        # d(site -> node): row per site
        self._from_site = engine.distances_from(list(self.sites))
        # d(node -> site): row per site
        self._to_site = engine.distances_to(list(self.sites))

    # ------------------------------------------------------------------ #
    @property
    def num_sites(self) -> int:
        """Number of candidate sites."""
        return len(self.sites)

    def distance_from_site(self, site: int, node: int) -> float:
        """Network distance ``d(site -> node)``."""
        return float(self._from_site[self.site_index[site], node])

    def distance_to_site(self, node: int, site: int) -> float:
        """Network distance ``d(node -> site)``."""
        return float(self._to_site[self.site_index[site], node])

    def round_trip_site_distance(self, site_a: int, site_b: int) -> float:
        """Round-trip distance ``d(a, b) + d(b, a)`` between two sites."""
        return self.distance_from_site(site_a, site_b) + self.distance_to_site(
            site_b, site_a
        )

    # ------------------------------------------------------------------ #
    def detour_vector(self, trajectory: Trajectory) -> np.ndarray:
        """Detour ``dr(T, s)`` from *trajectory* to every candidate site.

        Returns a length-``|S|`` float array; unreachable sites are ``inf``.
        """
        nodes = trajectory.nodes_array()
        cum = trajectory.cumulative_array()
        # arrival[i, k] = d(v_k -> s_i) + cum_k
        arrival = self._to_site[:, nodes] + cum[np.newaxis, :]
        # departure[i, l] = d(s_i -> v_l) - cum_l
        departure = self._from_site[:, nodes] - cum[np.newaxis, :]
        best_arrival = np.minimum.accumulate(arrival, axis=1)
        detours = np.min(best_arrival + departure, axis=1)
        # numerical noise can push a zero detour slightly negative
        return np.maximum(detours, 0.0)

    def detour(self, trajectory: Trajectory, site: int) -> float:
        """Detour from *trajectory* to a single *site*."""
        return float(self.detour_vector(trajectory)[self.site_index[site]])

    def detour_matrix(self, dataset: TrajectoryDataset) -> np.ndarray:
        """Detour matrix of shape ``(m, |S|)``: rows follow dataset order."""
        matrix = np.empty((len(dataset), self.num_sites), dtype=np.float64)
        for row, trajectory in enumerate(dataset):
            matrix[row] = self.detour_vector(trajectory)
        return matrix

    # ------------------------------------------------------------------ #
    def detour_bruteforce(self, trajectory: Trajectory, site: int) -> float:
        """O(l²) reference implementation of the detour (used in tests)."""
        nodes = trajectory.nodes_array()
        cum = trajectory.cumulative_array()
        row = self.site_index[site]
        best = np.inf
        for k in range(len(nodes)):
            for l in range(k, len(nodes)):
                to_site = self._to_site[row, nodes[k]]
                from_site = self._from_site[row, nodes[l]]
                along = cum[l] - cum[k]
                best = min(best, to_site + from_site - along)
        return float(max(best, 0.0))

    # ------------------------------------------------------------------ #
    def evaluate_utility(
        self,
        dataset: TrajectoryDataset,
        selected_sites: Sequence[int],
        tau_km: float,
        preference,
    ) -> tuple[float, np.ndarray]:
        """Exact utility of a selected site set.

        Returns ``(total_utility, per_trajectory_utility)``.  This is how the
        experiments score every algorithm (including NetClus, whose internal
        computation uses estimated detours) on a common footing.
        """
        if not selected_sites:
            return 0.0, np.zeros(len(dataset))
        columns = [self.site_index[int(s)] for s in selected_sites]
        per_traj = np.zeros(len(dataset))
        for row, trajectory in enumerate(dataset):
            detours = self.detour_vector(trajectory)[columns]
            scores = preference(detours, tau_km)
            per_traj[row] = float(np.max(scores)) if len(scores) else 0.0
        return float(np.sum(per_traj)), per_traj

    def storage_bytes(self) -> int:
        """Bytes held by the two distance tables (used by the memory study)."""
        return int(self._from_site.nbytes + self._to_site.nbytes)
