"""NetClus: the multi-resolution clustering index and its query algorithm.

Offline phase (Section 4)
-------------------------
For a ladder of cluster radii ``R_p = (1+γ)^p · R_0`` with ``R_0 = τ_min/4``
and ``t = ⌊log_{1+γ}(τ_max/τ_min)⌋ + 1`` instances, the road network is
partitioned by Greedy-GDSP into clusters of round-trip radius at most
``2 R_p``.  Construction runs through the staged pipeline of
:mod:`repro.core.build` (clustering → representative election → trajectory
registration → neighbour lists; ``workers=N`` parallelises the independent
per-instance clusterings with an identical result).  Every cluster stores

1. its center ``c_i``,
2. its representative ``r_i`` — the candidate site closest to the center,
3. the trajectory list ``T L(g_i) = {⟨T_j, dr(T_j, c_i)⟩}`` of trajectories
   passing through the cluster,
4. its neighbour list ``CL(g_i)`` — clusters whose centers are within
   round-trip distance ``4 R_p (1+γ)``,
5. its member nodes with their round-trip distance to the center.

Trajectories are thereby stored as (deduplicated) sequences of clusters — the
compressed representation that gives NetClus its small footprint.

Online phase (Section 5)
------------------------
Given a query (k, τ, ψ), the instance ``p = ⌊log_{1+γ}(τ/τ_min)⌋`` (clamped)
is selected so that ``4R_p ≤ τ < 4R_p(1+γ)``.  For every cluster
representative the detour to a trajectory is *estimated* as
``d̂r(T_j, r_i) = dr(T_j, c_j) + dr(c_j, c_i) + dr(c_i, r_i)`` using only
information stored offline, the approximate covers ``T̂C`` are formed, and
Inc-Greedy (or FM-greedy for the binary instance) runs over the cluster
representatives.  With ``shards > 1`` the coverage is partitioned by
trajectory into disjoint shards (:mod:`repro.core.shards`) whose gain
vectors a coordinator sums — utilities are additive over disjoint
trajectory sets, so sharded selections are identical to the unsharded
path while the per-shard work can run concurrently.

Dynamic updates (Section 6) — addition/deletion of candidate sites and
trajectories — modify the affected clusters of every instance in place.
Updates can be applied one at a time (:meth:`NetClusIndex.add_trajectory`
and friends) or, far cheaper per item, as a batch through
:class:`UpdateBatch`/:meth:`NetClusIndex.apply_updates` and the plural
``add_trajectories``/``remove_trajectories``/``add_sites``/``remove_sites``
APIs, which share per-instance lookup structures and the shortest-path
engine across the whole batch.  Every mutation bumps the monotonic
:attr:`NetClusIndex.version` counter, which downstream caches (the
placement service) use to detect staleness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.bitcov import BitsetCoverageIndex
from repro.core.coverage import CoverageIndex, SparseCoverageIndex, resolve_engine
from repro.core.fm_greedy import FMGreedy
from repro.core.greedy import IncGreedy, LazyGreedy
from repro.core.shards import ShardedCoverage
from repro.core.preference import PreferenceFunction
from repro.core.query import TOPSQuery, TOPSResult
from repro.network.graph import RoadNetwork
from repro.network.shortest_path import ShortestPathEngine
from repro.trajectory.model import Trajectory, TrajectoryDataset
from repro.utils.timer import Timer
from repro.utils.validation import require, require_positive

__all__ = [
    "NetClusCluster",
    "NetClusInstance",
    "NetClusIndex",
    "ClusteredCoverage",
    "UpdateBatch",
    "register_trajectory_batch",
]

#: relative tolerance used to snap τ onto an instance boundary: τ equal to
#: ``τ_min·(1+γ)^p`` up to float noise must select instance p, not p-1
_TAU_BOUNDARY_RTOL = 1e-9


def register_trajectory_batch(
    instance: "NetClusInstance",
    num_nodes: int,
    traj_ids: Sequence[int],
    node_arrays: Sequence[np.ndarray],
) -> None:
    """Register a batch of trajectories into one index instance.

    The single registration implementation shared by the offline build and
    the streaming update engine.  Builds dense node→cluster and
    node→round-trip lookup arrays once per instance (cached on the
    instance), then reduces the *whole batch's* (trajectory, node) pairs to
    per-(cluster, trajectory) minimum legs with a single lexsort + grouped
    minimum instead of per-node dictionary probes per trajectory.

    The produced trajectory lists carry, per cluster, ``dr(T, c_i)`` — the
    minimum round-trip from any visited member node to the cluster center —
    with dict insertion order equal to batch order (clusters see
    trajectories in the order they were registered, which downstream
    tie-breaks rely on).  Node ids outside ``[0, num_nodes)`` or outside
    every cluster are ignored, like an unclustered node in a per-node walk.
    """
    cluster_of, round_trip_of = instance.node_lookup_arrays(num_nodes)
    if not len(node_arrays):
        return
    all_nodes = np.concatenate(list(node_arrays))
    positions = np.repeat(
        np.arange(len(node_arrays)), [len(nodes) for nodes in node_arrays]
    )
    # node ids outside the network are unclustered — they must not wrap
    # around (negative) or overflow the dense lookup arrays
    in_range = (all_nodes >= 0) & (all_nodes < len(cluster_of))
    cluster_ids = np.full(len(all_nodes), -1, dtype=np.int64)
    legs = np.full(len(all_nodes), np.inf, dtype=np.float64)
    cluster_ids[in_range] = cluster_of[all_nodes[in_range]]
    legs[in_range] = round_trip_of[all_nodes[in_range]]
    valid = (cluster_ids >= 0) & np.isfinite(legs)
    cluster_ids, legs, positions = cluster_ids[valid], legs[valid], positions[valid]
    if len(cluster_ids) == 0:
        return
    # group by (cluster, batch position): position-minor order reproduces
    # the insertion order of a per-trajectory registration walk
    order = np.lexsort((positions, cluster_ids))
    cluster_ids, legs, positions = (
        cluster_ids[order],
        legs[order],
        positions[order],
    )
    boundary = np.r_[
        True,
        (cluster_ids[1:] != cluster_ids[:-1]) | (positions[1:] != positions[:-1]),
    ]
    starts = np.flatnonzero(boundary)
    min_legs = np.minimum.reduceat(legs, starts)
    clusters = instance.clusters
    traj_ids = [int(t) for t in traj_ids]
    for cluster_id, position, leg in zip(
        cluster_ids[starts].tolist(), positions[starts].tolist(), min_legs.tolist()
    ):
        clusters[cluster_id].trajectory_list[traj_ids[position]] = leg


@dataclass
class NetClusCluster:
    """All per-cluster information stored by a NetClus index instance."""

    cluster_id: int
    center: int
    nodes: dict[int, float]  # node -> round-trip distance to center
    representative: int | None = None
    representative_round_trip_km: float = math.inf
    trajectory_list: dict[int, float] = field(default_factory=dict)  # traj_id -> dr(T, c_i)
    neighbors: list[tuple[int, float]] = field(default_factory=list)  # (cluster_id, dr(c_i, c_j))

    @property
    def has_representative(self) -> bool:
        """Whether the cluster contains at least one candidate site."""
        return self.representative is not None

    @property
    def num_trajectories(self) -> int:
        """|T L(g_i)| — trajectories passing through the cluster."""
        return len(self.trajectory_list)


class NetClusInstance:
    """One clustering resolution ``I_p`` of the NetClus index."""

    def __init__(
        self,
        instance_id: int,
        radius_km: float,
        gamma: float,
        clusters: list[NetClusCluster],
        node_to_cluster: dict[int, int],
        build_seconds: float = 0.0,
        mean_dominating_set_size: float = 0.0,
    ) -> None:
        self.instance_id = instance_id
        self.radius_km = radius_km
        self.gamma = gamma
        self.clusters = clusters
        self.node_to_cluster = node_to_cluster
        self.build_seconds = build_seconds
        self.mean_dominating_set_size = mean_dominating_set_size
        self._node_lookup: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    @property
    def num_clusters(self) -> int:
        """η_p — number of clusters in this instance."""
        return len(self.clusters)

    @property
    def tau_range(self) -> tuple[float, float]:
        """The half-open range of coverage thresholds this instance serves."""
        return 4.0 * self.radius_km, 4.0 * self.radius_km * (1.0 + self.gamma)

    def representatives(self) -> list[NetClusCluster]:
        """Clusters that have a representative candidate site."""
        return [cluster for cluster in self.clusters if cluster.has_representative]

    def cluster_of_node(self, node: int) -> NetClusCluster:
        """Return the cluster containing *node*."""
        return self.clusters[self.node_to_cluster[node]]

    def node_lookup_arrays(self, num_nodes: int) -> tuple[np.ndarray, np.ndarray]:
        """Dense node→cluster and node→round-trip lookup arrays (cached).

        Cluster membership is fixed after the offline build except for the
        rare dynamic attach of an unclustered node, which calls
        :meth:`invalidate_node_lookup`; the arrays are therefore built once
        and shared by every batched registration.
        """
        if self._node_lookup is None or len(self._node_lookup[0]) != num_nodes:
            cluster_of = np.full(num_nodes, -1, dtype=np.int64)
            if self.node_to_cluster:
                keys = np.fromiter(
                    self.node_to_cluster.keys(), np.int64, len(self.node_to_cluster)
                )
                values = np.fromiter(
                    self.node_to_cluster.values(), np.int64, len(self.node_to_cluster)
                )
                cluster_of[keys] = values
            round_trip_of = np.full(num_nodes, np.inf, dtype=np.float64)
            for cluster in self.clusters:
                if not cluster.nodes:
                    continue
                member_ids = np.fromiter(
                    cluster.nodes.keys(), np.int64, len(cluster.nodes)
                )
                member_legs = np.fromiter(
                    cluster.nodes.values(), np.float64, len(cluster.nodes)
                )
                # only the owning cluster's leg counts (a node can also appear
                # in another cluster's nodes after a dynamic attach)
                owned = cluster_of[member_ids] == cluster.cluster_id
                round_trip_of[member_ids[owned]] = member_legs[owned]
            self._node_lookup = (cluster_of, round_trip_of)
        return self._node_lookup

    def invalidate_node_lookup(self) -> None:
        """Drop the cached lookup arrays (cluster membership changed)."""
        self._node_lookup = None

    def mean_trajectory_list_size(self) -> float:
        """Average |T L| across clusters (Table 11)."""
        if not self.clusters:
            return 0.0
        return float(np.mean([c.num_trajectories for c in self.clusters]))

    def mean_neighbor_count(self) -> float:
        """Average |CL| across clusters (Table 11)."""
        if not self.clusters:
            return 0.0
        return float(np.mean([len(c.neighbors) for c in self.clusters]))

    # ------------------------------------------------------------------ #
    def estimated_detours(
        self, trajectory_rows: dict[int, int], tau_km: float
    ) -> tuple[np.ndarray, list[int], list[int]]:
        """Build the estimated-detour matrix of the clustered space.

        Parameters
        ----------
        trajectory_rows:
            Mapping ``traj_id -> row`` fixing the row order of the matrix.
        tau_km:
            Coverage threshold; used only to skip neighbours whose centers are
            already farther than τ (their estimates cannot qualify).

        Returns
        -------
        (detours, representative_sites, representative_cluster_ids)
            ``detours`` has shape ``(len(trajectory_rows), #representatives)``
            with ``inf`` where no estimate is available.
        """
        reps = self.representatives()
        rep_sites = [cluster.representative for cluster in reps]
        rep_cluster_ids = [cluster.cluster_id for cluster in reps]
        detours = np.full((len(trajectory_rows), len(reps)), np.inf)
        cluster_rows, cluster_legs = self._trajectory_arrays(trajectory_rows)

        for col, cluster in enumerate(reps):
            rep_leg = cluster.representative_round_trip_km
            column = detours[:, col]
            # the cluster itself plus its neighbours contribute trajectories
            sources: list[tuple[int, float]] = [(cluster.cluster_id, 0.0)]
            for neighbor_id, center_distance in cluster.neighbors:
                if center_distance > tau_km:
                    continue
                sources.append((neighbor_id, center_distance))
            for source_id, center_distance in sources:
                rows = cluster_rows[source_id]
                if len(rows) == 0:
                    continue
                estimates = cluster_legs[source_id] + center_distance + rep_leg
                np.minimum.at(column, rows, estimates)
        return detours, rep_sites, rep_cluster_ids

    def estimated_coverage_entries(
        self, trajectory_rows: dict[int, int], tau_km: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[int], list[int]]:
        """Sparse coverage lists of the clustered space: qualifying estimates only.

        The sparse counterpart of :meth:`estimated_detours`: instead of an
        ``(m, #representatives)`` matrix full of ``inf``, it returns the
        (trajectory row, representative column, estimated detour) triples with
        ``d̂r ≤ τ`` — exactly the entries that can contribute coverage.
        Duplicate (row, column) pairs (one per contributing neighbour
        cluster) are left to the consumer, which keeps the smallest estimate;
        :meth:`SparseCoverageIndex.from_coverage_lists` does this natively.

        Returns
        -------
        (rows, cols, estimates, representative_sites, representative_cluster_ids)
        """
        reps = self.representatives()
        rep_sites = [cluster.representative for cluster in reps]
        rep_cluster_ids = [cluster.cluster_id for cluster in reps]
        cluster_rows, cluster_legs = self._trajectory_arrays(trajectory_rows)

        row_parts: list[np.ndarray] = []
        col_parts: list[np.ndarray] = []
        estimate_parts: list[np.ndarray] = []
        for col, cluster in enumerate(reps):
            rep_leg = cluster.representative_round_trip_km
            sources: list[tuple[int, float]] = [(cluster.cluster_id, 0.0)]
            for neighbor_id, center_distance in cluster.neighbors:
                if center_distance > tau_km:
                    continue
                sources.append((neighbor_id, center_distance))
            for source_id, center_distance in sources:
                rows = cluster_rows[source_id]
                if len(rows) == 0:
                    continue
                estimates = cluster_legs[source_id] + center_distance + rep_leg
                within = estimates <= tau_km
                if not np.any(within):
                    continue
                row_parts.append(rows[within])
                col_parts.append(np.full(int(within.sum()), col, dtype=np.int64))
                estimate_parts.append(estimates[within])
        if row_parts:
            all_rows = np.concatenate(row_parts)
            all_cols = np.concatenate(col_parts)
            all_estimates = np.concatenate(estimate_parts)
        else:
            all_rows = np.empty(0, dtype=np.int64)
            all_cols = np.empty(0, dtype=np.int64)
            all_estimates = np.empty(0, dtype=np.float64)
        return all_rows, all_cols, all_estimates, rep_sites, rep_cluster_ids

    def estimated_column_entries(
        self, trajectory_rows: dict[int, int], tau_km: float, cluster_ids: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Qualifying estimates of the representative columns of *cluster_ids*.

        A column-restricted :meth:`estimated_coverage_entries` — same source
        enumeration, same float expression, same ≤ τ filter — used by the
        coverage cache to recompute only the columns a dynamic update
        touched (a representative re-election changes every estimate of its
        column, nothing else).  Returned column indices are positions in the
        *current* :meth:`representatives` list.
        """
        wanted = set(int(c) for c in cluster_ids)
        cluster_rows, cluster_legs = self._trajectory_arrays(trajectory_rows)
        row_parts: list[np.ndarray] = []
        col_parts: list[np.ndarray] = []
        estimate_parts: list[np.ndarray] = []
        for col, cluster in enumerate(self.representatives()):
            if cluster.cluster_id not in wanted:
                continue
            rep_leg = cluster.representative_round_trip_km
            sources: list[tuple[int, float]] = [(cluster.cluster_id, 0.0)]
            for neighbor_id, center_distance in cluster.neighbors:
                if center_distance > tau_km:
                    continue
                sources.append((neighbor_id, center_distance))
            for source_id, center_distance in sources:
                rows = cluster_rows[source_id]
                if len(rows) == 0:
                    continue
                estimates = cluster_legs[source_id] + center_distance + rep_leg
                within = estimates <= tau_km
                if not np.any(within):
                    continue
                row_parts.append(rows[within])
                col_parts.append(np.full(int(within.sum()), col, dtype=np.int64))
                estimate_parts.append(estimates[within])
        if row_parts:
            return (
                np.concatenate(row_parts),
                np.concatenate(col_parts),
                np.concatenate(estimate_parts),
            )
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )

    def _trajectory_arrays(
        self, trajectory_rows: dict[int, int]
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Per-cluster (row indices, legs) arrays for the indexed trajectories."""
        cluster_rows: list[np.ndarray] = []
        cluster_legs: list[np.ndarray] = []
        for cluster in self.clusters:
            rows: list[int] = []
            legs: list[float] = []
            for traj_id, leg in cluster.trajectory_list.items():
                row = trajectory_rows.get(traj_id)
                if row is not None:
                    rows.append(row)
                    legs.append(leg)
            cluster_rows.append(np.asarray(rows, dtype=np.int64))
            cluster_legs.append(np.asarray(legs, dtype=np.float64))
        return cluster_rows, cluster_legs

    def storage_bytes(self) -> int:
        """Approximate bytes of the per-cluster payload (Table 7 / Table 9)."""
        total = 0
        for cluster in self.clusters:
            total += 16 * len(cluster.nodes)
            total += 16 * len(cluster.trajectory_list)
            total += 16 * len(cluster.neighbors)
            total += 32  # center, representative, radii bookkeeping
        return total


class ClusteredCoverage:
    """A prepared clustered-space coverage: everything :meth:`NetClusIndex.query`
    derives from ``(τ, ψ)`` before the greedy runs.

    Produced by :meth:`NetClusIndex.prepare_coverage` and reusable across any
    number of queries sharing the same ``(τ, ψ)`` — varying k, capacity,
    budget or existing services.  The placement service builds one of these
    per ``(τ, ψ)`` group of a batch, which is what amortises the
    instance-resolution and coverage-construction work.

    The backing instance may be supplied *deferred*: a coverage-cache hit
    only ever reads three instance scalars (id, radius, cluster count) for
    result metadata, so on a lazily-rebuilt ladder (v4 mmap loads) the
    cache passes ``instance_factory`` + ``instance_summary`` instead of a
    materialised instance, and the rung's cluster dictionaries are only
    rebuilt if something genuinely needs them (``existing_sites`` mapping,
    update patching).

    Attributes
    ----------
    instance:
        The index instance ``I_p`` selected for τ (materialised on first
        access when the coverage was built with a deferred instance).
    coverage:
        The coverage index over the cluster representatives (dense or
        sparse, depending on the requested engine; a
        :class:`~repro.core.shards.ShardedCoverage` over per-shard parts
        when the coverage was prepared with ``shards > 1``).
    representative_sites:
        Node id of each representative, aligned with coverage columns.
    representative_clusters:
        Cluster id of each representative, aligned with coverage columns.
    engine:
        ``"dense"`` or ``"sparse"`` — which representation was built.
    index_version:
        The :attr:`NetClusIndex.version` the structures were built at;
        :meth:`NetClusIndex.query` refuses a prepared coverage whose version
        no longer matches the (since-mutated) index.
    """

    def __init__(
        self,
        instance: NetClusInstance | None = None,
        coverage: (
            CoverageIndex | SparseCoverageIndex | BitsetCoverageIndex | ShardedCoverage
        ) = None,  # type: ignore[assignment]
        representative_sites: list[int] = None,  # type: ignore[assignment]
        representative_clusters: list[int] = None,  # type: ignore[assignment]
        engine: str = None,  # type: ignore[assignment]
        index_version: int = 0,
        *,
        instance_factory: Callable[[], NetClusInstance] | None = None,
        instance_summary: tuple[int, float, int] | None = None,
    ) -> None:
        require(
            (instance is None) != (instance_factory is None),
            "ClusteredCoverage needs exactly one of instance or instance_factory",
        )
        require(
            instance is not None or instance_summary is not None,
            "a deferred instance needs an (id, radius_km, num_clusters) summary",
        )
        require(coverage is not None, "ClusteredCoverage needs a coverage index")
        require(engine is not None, "ClusteredCoverage needs an engine name")
        self._instance = instance
        self._instance_factory = instance_factory
        self._instance_summary = instance_summary
        self.coverage = coverage
        self.representative_sites = (
            list(representative_sites) if representative_sites is not None else []
        )
        self.representative_clusters = (
            list(representative_clusters) if representative_clusters is not None else []
        )
        self.engine = engine
        self.index_version = int(index_version)

    @property
    def instance(self) -> NetClusInstance:
        """The backing instance, rebuilding a deferred one on first access."""
        if self._instance is None:
            assert self._instance_factory is not None
            self._instance = self._instance_factory()
        return self._instance

    @property
    def instance_id(self) -> int:
        """Instance id — answered from the summary without materialising."""
        if self._instance is None and self._instance_summary is not None:
            return int(self._instance_summary[0])
        return self.instance.instance_id

    @property
    def instance_radius_km(self) -> float:
        """Instance cluster radius — summary-backed like :attr:`instance_id`."""
        if self._instance is None and self._instance_summary is not None:
            return float(self._instance_summary[1])
        return self.instance.radius_km

    @property
    def num_clusters(self) -> int:
        """Instance cluster count — summary-backed like :attr:`instance_id`."""
        if self._instance is None and self._instance_summary is not None:
            return int(self._instance_summary[2])
        return self.instance.num_clusters

    @property
    def tau_km(self) -> float:
        """The coverage threshold the structures were built for."""
        return self.coverage.tau_km

    @property
    def num_shards(self) -> int:
        """Trajectory shards of the coverage (1 for an unsharded build)."""
        return getattr(self.coverage, "num_shards", 1)

    def existing_columns(self, existing_sites: Sequence[int]) -> list[int]:
        """Map existing service locations to representative columns.

        Each existing site is represented by the representative of its
        cluster (the same proxying the online phase applies to candidate
        sites); sites whose cluster has no representative are dropped.
        """
        cluster_to_column = {
            cid: col for col, cid in enumerate(self.representative_clusters)
        }
        columns: list[int] = []
        for site in existing_sites:
            cluster_id = self.instance.node_to_cluster.get(int(site))
            if cluster_id is None:
                continue
            column = cluster_to_column.get(cluster_id)
            if column is not None and column not in columns:
                columns.append(column)
        return columns


@dataclass(frozen=True)
class UpdateBatch:
    """One batch of dynamic updates for :meth:`NetClusIndex.apply_updates`.

    The batch is applied in a fixed order — trajectory removals, site
    removals, trajectory additions, site additions — and is guaranteed to
    leave the index in exactly the state the equivalent sequence of
    one-at-a-time calls (in that same order) would produce; batching only
    amortises per-call setup work, it never changes the computation.

    Attributes
    ----------
    add_trajectories:
        New trajectories; ids must not collide with indexed ones.
    remove_trajectories:
        Ids of indexed trajectories to drop.
    add_sites:
        Node ids to register as candidate sites (already-registered ids are
        ignored, matching :meth:`NetClusIndex.add_site`).
    remove_sites:
        Node ids to unregister (unknown ids raise ``KeyError``).
    """

    add_trajectories: tuple[Trajectory, ...] = ()
    remove_trajectories: tuple[int, ...] = ()
    add_sites: tuple[int, ...] = ()
    remove_sites: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "add_trajectories", tuple(self.add_trajectories))
        object.__setattr__(
            self, "remove_trajectories", tuple(int(t) for t in self.remove_trajectories)
        )
        object.__setattr__(self, "add_sites", tuple(int(s) for s in self.add_sites))
        object.__setattr__(self, "remove_sites", tuple(int(s) for s in self.remove_sites))

    def __len__(self) -> int:
        """Total number of update items in the batch."""
        return (
            len(self.add_trajectories)
            + len(self.remove_trajectories)
            + len(self.add_sites)
            + len(self.remove_sites)
        )


class NetClusIndex:
    """The multi-resolution NetClus index (offline structure + online query).

    Build it with :meth:`build`; answer TOPS queries with :meth:`query`;
    apply dynamic updates with :meth:`add_site`, :meth:`remove_site`,
    :meth:`add_trajectory` and :meth:`remove_trajectory` — or, for whole
    batches of updates, with :meth:`apply_updates` and the plural
    :meth:`add_trajectories`/:meth:`remove_trajectories`/:meth:`add_sites`/
    :meth:`remove_sites`, which amortise per-call setup across the batch.
    Every mutation bumps :attr:`version`.  For repeated queries sharing one
    ``(τ, ψ)``, :meth:`prepare_coverage` exposes the reusable
    clustered-space structures; :mod:`repro.service` builds index
    persistence (save/load) and a batch-query façade on top of these hooks.
    """

    algorithm_name = "netclus"

    def __init__(
        self,
        network: RoadNetwork,
        sites: Sequence[int],
        instances: Sequence[NetClusInstance],
        tau_min_km: float,
        tau_max_km: float,
        gamma: float,
        trajectory_ids: Sequence[int],
        representative_strategy: str = "closest",
        version: int = 0,
        node_visit_counts: np.ndarray | None = None,
        trajectory_nodes: dict[int, np.ndarray] | None = None,
        build_stats: Sequence["BuildStats"] | None = None,
        max_instances: int | None = None,
        shards: int = 1,
    ) -> None:
        self.network = network
        self.sites = set(int(s) for s in sites)
        self.instances = instances
        self.tau_min_km = tau_min_km
        self.tau_max_km = tau_max_km
        self.gamma = gamma
        self.representative_strategy = representative_strategy
        #: per-stage offline-phase records (clustering, representatives,
        #: registration, neighbors) from :mod:`repro.core.build`; empty for
        #: indexes loaded from manifests that predate the staged pipeline
        self.build_stats = list(build_stats or [])
        #: the ``max_instances`` cap the index was built with (``None`` =
        #: full ladder); round-tripped through the manifest
        self.max_instances = max_instances
        #: default trajectory-shard count for :meth:`prepare_coverage` /
        #: :meth:`query` (1 = unsharded).  Purely a query-time default —
        #: sharding never changes selections — round-tripped through the
        #: manifest so a service loading the index inherits the layout.
        require(int(shards) >= 1, "shards must be >= 1")
        self.shards = int(shards)
        self._trajectory_ids = list(trajectory_ids)
        self._trajectory_rows = {
            traj_id: row for row, traj_id in enumerate(self._trajectory_ids)
        }
        #: monotonic mutation counter: bumped by every state-changing update
        #: call; caches keyed on a selection (the placement service's LRU)
        #: compare it to detect staleness.  Persisted in the index manifest.
        self.version = int(version)
        # visit-count bookkeeping backing "most_frequent" re-election: the
        # per-node distinct-trajectory counts and, per trajectory, its unique
        # node array (needed to decrement counts on removal).  ``None`` for
        # "closest" indexes — and for "most_frequent" indexes loaded from a
        # format-v1 payload, which re-elect by proximity as before.
        self._node_visit_counts = node_visit_counts
        self._trajectory_nodes = trajectory_nodes
        self._engine: ShortestPathEngine | None = None
        #: optional persistent coverage cache (format v3 / zero-rebuild
        #: queries); ``None`` until :meth:`enable_coverage_cache` attaches
        #: one — opt-in, so plain indexes behave exactly as before
        self.coverage_cache = None

    def enable_coverage_cache(self, limit: int | None = None):
        """Attach (or return) the index's :class:`~repro.core.covcache.CoverageCache`.

        Once enabled, :meth:`prepare_coverage` serves warm ``(τ, ψ)``
        structures from the cache and stores fresh ones on a miss, and
        :meth:`apply_updates` patches the cached parts in place instead of
        letting them go stale — steady-state queries then run greedy with
        zero coverage-build work.  Idempotent; *limit* resizes the LRU part
        budget when given.
        """
        from repro.core.covcache import DEFAULT_PART_LIMIT, CoverageCache

        if self.coverage_cache is None:
            self.coverage_cache = CoverageCache(
                limit=DEFAULT_PART_LIMIT if limit is None else limit
            )
        elif limit is not None:
            self.coverage_cache.resize(limit)
        return self.coverage_cache

    # ------------------------------------------------------------------ #
    # offline construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        network: RoadNetwork,
        dataset: TrajectoryDataset,
        sites: Sequence[int],
        gamma: float = 0.75,
        tau_min_km: float = 0.4,
        tau_max_km: float = 8.0,
        use_fm_sketches: bool = False,
        num_sketches: int = 30,
        gdsp_chunk_size: int = 512,
        max_instances: int | None = None,
        representative_strategy: str = "closest",
        workers: int | str = 1,
        mp_start_method: str | None = None,
    ) -> "NetClusIndex":
        """Construct the index (offline phase).

        The construction runs through the staged build pipeline of
        :mod:`repro.core.build` — per-instance GDSP clustering →
        representative election → trajectory registration → neighbour
        lists — which records a :class:`~repro.core.build.BuildStats` per
        stage on the returned index (:attr:`build_stats`).

        Parameters
        ----------
        network, dataset, sites:
            The road network, map-matched trajectories, and candidate sites.
        gamma:
            Index resolution parameter γ (> 0): consecutive radii grow by
            ``1 + γ``; the paper fixes 0.75 as the best space/quality balance.
        tau_min_km, tau_max_km:
            The supported coverage-threshold range; the paper sets these to
            the min/max round-trip distance between candidate sites, which the
            caller may compute and pass explicitly.
        use_fm_sketches:
            Run Greedy-GDSP with FM-sketch estimated coverage.
        max_instances:
            Optional cap on the number of index instances (testing aid).
        representative_strategy:
            How each cluster elects its representative site (Section 4.2):
            ``"closest"`` — the candidate site nearest to the cluster center
            (the paper's choice), or ``"most_frequent"`` — the candidate site
            visited by the largest number of trajectories.
        workers:
            Number of processes for the independent per-instance
            clusterings.  ``1`` (default) runs everything in-process;
            ``N > 1`` fans the per-instance work out over a
            ``multiprocessing`` pool and is guaranteed to produce a
            state-, selection- and serialization-identical index;
            ``"auto"`` resolves to the usable-CPU count.
        mp_start_method:
            Optional ``multiprocessing`` start method for ``workers > 1``
            (``"fork"``/``"spawn"``/``"forkserver"``; default: the
            platform default).

        Returns
        -------
        NetClusIndex
            ``t = ⌊log_{1+γ}(τ_max/τ_min)⌋ + 1`` instances (fewer when
            capped), ready to answer queries.  All distances here and
            throughout the index — radii, detours, τ — are in kilometres;
            no metre-denominated quantity exists in this library.
        """
        from repro.core.build import build_index

        return build_index(
            network,
            dataset,
            sites,
            gamma=gamma,
            tau_min_km=tau_min_km,
            tau_max_km=tau_max_km,
            use_fm_sketches=use_fm_sketches,
            num_sketches=num_sketches,
            gdsp_chunk_size=gdsp_chunk_size,
            max_instances=max_instances,
            representative_strategy=representative_strategy,
            workers=workers,
            mp_start_method=mp_start_method,
        )

    @staticmethod
    def _elect_representative(
        cluster: NetClusCluster,
        sites: set[int],
        strategy: str,
        visit_counts: np.ndarray | None,
    ) -> None:
        """Choose the cluster representative among its candidate sites.

        ``"closest"`` picks the site with the smallest round-trip distance to
        the cluster center; ``"most_frequent"`` picks the site visited by the
        largest number of trajectories (ties broken by proximity to the
        center).  The stored ``representative_round_trip_km`` is always the
        representative's distance to the center, as the online estimate needs
        it regardless of how the representative was elected.
        """
        candidate_sites = [
            (node, round_trip) for node, round_trip in cluster.nodes.items() if node in sites
        ]
        if not candidate_sites:
            return
        if strategy == "most_frequent" and visit_counts is not None:
            best_node, best_round_trip = max(
                candidate_sites,
                key=lambda item: (visit_counts[item[0]], -item[1]),
            )
        else:
            best_node, best_round_trip = min(candidate_sites, key=lambda item: item[1])
        cluster.representative = best_node
        cluster.representative_round_trip_km = best_round_trip

    # ------------------------------------------------------------------ #
    # online query
    # ------------------------------------------------------------------ #
    def instance_for(self, tau_km: float) -> NetClusInstance:
        """Select the index instance serving coverage threshold *tau_km*.

        ``p = ⌊log_{1+γ}(τ/τ_min)⌋`` clamped into the available ladder; below
        τ_min the finest instance is used (NetClus degenerates towards plain
        Inc-Greedy), above τ_max the coarsest.  A τ equal to an instance
        boundary ``τ_min·(1+γ)^p`` up to float rounding selects instance p:
        ``math.log`` can undershoot the exact integer, so the ratio is
        snapped to the next boundary within a relative tolerance.
        """
        require_positive(tau_km, "tau_km")
        if tau_km <= self.tau_min_km:
            return self.instances[0]
        ratio = tau_km / self.tau_min_km
        p = int(math.floor(math.log(ratio, 1.0 + self.gamma)))
        if ratio >= (1.0 + self.gamma) ** (p + 1) * (1.0 - _TAU_BOUNDARY_RTOL):
            p += 1
        p = max(0, min(p, len(self.instances) - 1))
        return self.instances[p]

    def prepare_coverage(
        self,
        tau_km: float,
        preference: PreferenceFunction,
        engine: str = "dense",
        instance: NetClusInstance | None = None,
        shards: int | None = None,
        executor=None,
    ) -> ClusteredCoverage:
        """Build the reusable clustered-space coverage for one ``(τ, ψ)``.

        Resolves the index instance for *tau_km* (or reuses a
        caller-resolved *instance* — how the placement service shares one
        resolution across several ψ at the same τ) and materialises the
        coverage structures over its cluster representatives:

        * ``engine="dense"`` — the estimated-detour matrix wrapped in a
          :class:`~repro.core.coverage.CoverageIndex` (the paper's setup);
        * ``engine="sparse"`` — the qualifying estimates fed straight into a
          :class:`~repro.core.coverage.SparseCoverageIndex` (never
          materialising the dense matrix);
        * ``engine="bitset"`` — the same ≤τ entries packed into
          :class:`~repro.core.bitcov.BitsetCoverageIndex` word blocks
          (binary ψ only; gains become popcounts);
        * ``engine="auto"`` — resolves to ``"bitset"`` when ``ψ.is_binary``
          and ``"sparse"`` otherwise (see
          :func:`repro.core.coverage.resolve_engine`).

        With ``shards > 1`` the trajectories are partitioned into that many
        disjoint shards (deterministically, by trajectory id — see
        :func:`repro.core.shards.shard_of`) and one dense/sparse part is
        built per shard, wrapped in a
        :class:`~repro.core.shards.ShardedCoverage` whose gain coordinator
        makes every query result identical to the unsharded path.
        ``shards=None`` uses the index default (:attr:`shards`);
        *executor* optionally evaluates the per-shard gain work
        concurrently (the placement service passes its persistent query
        pool).

        The returned :class:`ClusteredCoverage` can answer any number of
        queries at this ``(τ, ψ)`` — pass it back via :meth:`query`'s
        ``prepared`` argument, or hand it to the solvers/variant drivers
        directly.  All distances are in kilometres.
        """
        engine = resolve_engine(engine, preference)
        if shards is None:
            shards = self.shards
        shards = int(shards)
        require(shards >= 1, "shards must be >= 1")
        if self.coverage_cache is not None:
            warm = self.coverage_cache.lookup(
                self, tau_km, preference, engine=engine, shards=shards, executor=executor
            )
            if warm is not None and (
                instance is None or warm.instance_id == instance.instance_id
            ):
                return warm
        if instance is None:
            instance = self.instance_for(tau_km)
        rows = self._trajectory_rows
        coverage: CoverageIndex | SparseCoverageIndex | BitsetCoverageIndex | ShardedCoverage
        if engine in ("sparse", "bitset"):
            entry_rows, entry_cols, estimates, rep_sites, rep_clusters = (
                instance.estimated_coverage_entries(rows, tau_km)
            )
            if shards > 1:
                coverage = ShardedCoverage.from_coverage_lists(
                    entry_rows,
                    entry_cols,
                    estimates,
                    num_trajectories=len(rows),
                    num_sites=len(rep_sites),
                    tau_km=tau_km,
                    preference=preference,
                    num_shards=shards,
                    site_labels=rep_sites,
                    trajectory_ids=self._trajectory_ids,
                    executor=executor,
                    engine=engine,
                )
            else:
                part_cls: type[SparseCoverageIndex] | type[BitsetCoverageIndex] = (
                    BitsetCoverageIndex if engine == "bitset" else SparseCoverageIndex
                )
                coverage = part_cls.from_coverage_lists(
                    entry_rows,
                    entry_cols,
                    estimates,
                    num_trajectories=len(rows),
                    num_sites=len(rep_sites),
                    tau_km=tau_km,
                    preference=preference,
                    site_labels=rep_sites,
                    trajectory_ids=self._trajectory_ids,
                )
        else:
            detours, rep_sites, rep_clusters = instance.estimated_detours(rows, tau_km)
            if shards > 1:
                coverage = ShardedCoverage.from_detours(
                    detours,
                    tau_km,
                    preference,
                    num_shards=shards,
                    engine="dense",
                    site_labels=rep_sites,
                    trajectory_ids=self._trajectory_ids,
                    executor=executor,
                )
            else:
                coverage = CoverageIndex(
                    detours,
                    tau_km,
                    preference,
                    site_labels=rep_sites,
                    trajectory_ids=self._trajectory_ids,
                )
        prepared = ClusteredCoverage(
            instance=instance,
            coverage=coverage,
            representative_sites=rep_sites,
            representative_clusters=rep_clusters,
            engine=engine,
            index_version=self.version,
        )
        if self.coverage_cache is not None:
            if engine in ("sparse", "bitset"):
                cached_rows, cached_cols, cached_estimates = (
                    entry_rows,
                    entry_cols,
                    estimates,
                )
            else:
                # the ≤ τ entries of the dense matrix — its values beyond τ
                # are score-0 / uncovered and never affect a selection
                cached_rows, cached_cols = np.nonzero(detours <= tau_km)
                cached_estimates = detours[cached_rows, cached_cols]
            self.coverage_cache.store_entries(
                self,
                tau_km,
                preference,
                cached_rows,
                cached_cols,
                cached_estimates,
                rep_sites,
                rep_clusters,
                instance.instance_id,
                prepared=prepared,
            )
        return prepared

    def query(
        self,
        query: TOPSQuery,
        use_fm_sketches: bool = False,
        num_sketches: int = 30,
        existing_sites: Sequence[int] = (),
        engine: str = "dense",
        prepared: ClusteredCoverage | None = None,
        shards: int | None = None,
    ) -> TOPSResult:
        """Answer a TOPS query ``(k, τ, ψ)`` over the clustered space.

        The reported ``utility`` is the clustered-space (estimated) utility;
        experiments additionally score the returned sites with the exact
        :class:`repro.core.distances.DistanceOracle` for quality comparisons.
        ``existing_sites`` seeds the greedy with already-operating services
        (their clusters' representatives are used as proxies).

        Parameters
        ----------
        query:
            The TOPS query; ``query.tau_km`` is in kilometres.
        use_fm_sketches:
            Run FM-greedy over the representatives instead of Inc-Greedy
            (only effective for a binary ψ; the result's ``algorithm`` is
            then ``"fm-netclus"``).
        num_sketches:
            Number of FM sketches f when *use_fm_sketches* is set.
        existing_sites:
            Node ids of already-operating services (Section 7.3).
        engine:
            Coverage representation: ``"dense"`` builds the estimated-detour
            matrix and runs the paper's Inc-Greedy; ``"sparse"`` feeds the
            qualifying estimates into a sparse index and runs the CELF lazy
            greedy; ``"bitset"`` packs the binary coverage into uint64
            words and runs Inc-Greedy on popcount gains (binary ψ only);
            ``"auto"`` picks bitset for binary ψ and sparse otherwise —
            the selections are identical across all engines.
        prepared:
            A :class:`ClusteredCoverage` from :meth:`prepare_coverage` to
            reuse; its ``(τ, engine)`` must match the query and its
            ``index_version`` the current :attr:`version` (a prepared
            coverage from before a dynamic update is refused rather than
            silently serving stale selections).  Skips the
            instance-resolution and coverage-construction work entirely.
        shards:
            Trajectory-shard count for a coverage built here (``None`` =
            the index default :attr:`shards`; ignored when *prepared* is
            given — the prepared coverage fixes the layout).  Any value
            returns identical selections and utilities; shards only split
            the gain evaluation into independently evaluable pieces.

        Returns
        -------
        TOPSResult
            Selected sites (node ids, in selection order), clustered-space
            utility, per-trajectory utilities, and metadata identifying the
            instance and engine used.
        """
        engine = resolve_engine(engine, query.preference)
        with Timer() as timer:
            if prepared is None:
                prepared = self.prepare_coverage(
                    query.tau_km, query.preference, engine, shards=shards
                )
            else:
                require(
                    prepared.engine == engine,
                    "prepared coverage was built with a different engine",
                )
                require(
                    prepared.tau_km == query.tau_km,
                    "prepared coverage was built for a different tau_km",
                )
                require(
                    prepared.index_version == self.version,
                    "prepared coverage is stale: the index was mutated after "
                    "prepare_coverage (rebuild it to answer queries)",
                )
            coverage = prepared.coverage
            existing_columns: list[int] = []
            if existing_sites:
                existing_columns = prepared.existing_columns(existing_sites)
            if use_fm_sketches and getattr(query.preference, "is_binary", False):
                solver = FMGreedy(coverage, num_sketches=num_sketches)
                inner = solver.solve(query)
                columns = coverage.columns_for_labels(inner.sites)
                utilities = coverage.per_trajectory_utility(columns)
                algorithm = "fm-netclus"
            else:
                greedy = (
                    LazyGreedy(coverage)
                    if getattr(coverage, "is_sparse", False)
                    else IncGreedy(coverage)
                )
                columns, utilities, _ = greedy.select(
                    query.k, existing_columns=existing_columns
                )
                algorithm = self.algorithm_name
            sites = tuple(int(coverage.site_labels[c]) for c in columns)
        return TOPSResult(
            sites=sites,
            utility=float(np.sum(utilities)),
            per_trajectory_utility=tuple(float(u) for u in utilities),
            elapsed_seconds=timer.elapsed,
            algorithm=algorithm,
            metadata={
                # summary-backed accessors: a coverage-cache hit reports
                # these without materialising the backing instance
                "instance_id": prepared.instance_id,
                "instance_radius_km": prepared.instance_radius_km,
                "num_clusters": prepared.num_clusters,
                "num_representatives": len(prepared.representative_sites),
                "engine": engine,
                "shards": prepared.num_shards,
            },
        )

    # ------------------------------------------------------------------ #
    # dynamic updates (Section 6)
    # ------------------------------------------------------------------ #
    def apply_updates(self, batch: UpdateBatch) -> int:
        """Apply a whole :class:`UpdateBatch` and return the number of items.

        Application order is fixed — trajectory removals, site removals,
        trajectory additions, site additions — and the final index state is
        identical to issuing the same updates through the one-at-a-time
        methods in that order; only the per-call setup work (shortest-path
        engine, per-instance node→cluster lookup tables, trajectory-registry
        rebuilds, representative re-elections) is shared across the batch.
        Bumps :attr:`version` once per non-empty sub-batch.

        The whole batch is validated up front: an invalid member (unknown
        removal id, duplicate or colliding addition, site at a non-network
        node) raises before *any* sub-batch is applied, so a failed
        ``apply_updates`` never leaves the index partially updated.
        """
        self._validate_batch(batch)
        probe = (
            self.coverage_cache.begin_delta(self, batch)
            if self.coverage_cache is not None
            else None
        )
        applied = 0
        applied += self.remove_trajectories(batch.remove_trajectories)
        applied += self.remove_sites(batch.remove_sites)
        applied += self.add_trajectories(batch.add_trajectories)
        applied += self.add_sites(batch.add_sites)
        if probe is not None:
            self.coverage_cache.finish_delta(self, batch, probe)
        return applied

    def _validate_batch(self, batch: UpdateBatch) -> None:
        """Raise if any member of *batch* would fail, before mutating.

        Mirrors the sub-batch validations, applied against the state each
        sub-batch will see (e.g. a trajectory id removed earlier in the
        batch may legitimately be re-added later in the same batch).
        """
        removed_trajectories: set[int] = set()
        for traj_id in batch.remove_trajectories:
            if traj_id not in self._trajectory_rows or traj_id in removed_trajectories:
                raise KeyError(f"trajectory {traj_id} is not indexed")
            removed_trajectories.add(traj_id)
        removed_sites: set[int] = set()
        for site in batch.remove_sites:
            if site not in self.sites or site in removed_sites:
                raise KeyError(f"site {site} is not a registered candidate site")
            removed_sites.add(site)
        added_trajectories: set[int] = set()
        for trajectory in batch.add_trajectories:
            traj_id = trajectory.traj_id
            already_indexed = (
                traj_id in self._trajectory_rows and traj_id not in removed_trajectories
            )
            require(
                not already_indexed and traj_id not in added_trajectories,
                f"trajectory id {traj_id} already present",
            )
            added_trajectories.add(traj_id)
        for site in batch.add_sites:
            require(self.network.has_node(site), f"site {site} is not a network node")

    def add_trajectory(self, trajectory: Trajectory) -> None:
        """Add a new trajectory to every index instance."""
        self.add_trajectories([trajectory])

    def remove_trajectory(self, traj_id: int) -> None:
        """Remove a trajectory from every index instance."""
        self.remove_trajectories([traj_id])

    def add_site(self, site: int) -> None:
        """Register a new candidate site located at an existing network node."""
        self.add_sites([site])

    def remove_site(self, site: int) -> None:
        """Unregister a candidate site; clusters elect a new representative."""
        self.remove_sites([site])

    def add_trajectories(self, trajectories: Sequence[Trajectory]) -> int:
        """Add *trajectories* to every instance; returns the number added.

        Ids must be new.  A batch registers trajectories instance by
        instance through a vectorised node→(cluster, round-trip) lookup
        built once per instance, instead of chasing per-node dictionaries
        for every trajectory; a single trajectory takes the plain scalar
        path, so one-at-a-time callers pay no table-building overhead.
        """
        trajectories = list(trajectories)
        batch_ids: set[int] = set()
        for trajectory in trajectories:
            require(
                trajectory.traj_id not in self._trajectory_rows
                and trajectory.traj_id not in batch_ids,
                f"trajectory id {trajectory.traj_id} already present",
            )
            batch_ids.add(trajectory.traj_id)
        if not trajectories:
            return 0
        for trajectory in trajectories:
            self._trajectory_rows[trajectory.traj_id] = len(self._trajectory_ids)
            self._trajectory_ids.append(trajectory.traj_id)
        traj_ids = [trajectory.traj_id for trajectory in trajectories]
        node_arrays = [t.nodes_array() for t in trajectories]
        for instance in self.instances:
            register_trajectory_batch(
                instance, self.network.num_nodes, traj_ids, node_arrays
            )
        if self._tracks_visits:
            self._ensure_writable_visit_counts()
            touched: set[int] = set()
            num_nodes = len(self._node_visit_counts)
            for trajectory in trajectories:
                unique_nodes = np.unique(trajectory.nodes_array())
                # nodes outside the network carry no visit count (they are
                # invisible to most_frequent elections, like a fresh build)
                unique_nodes = unique_nodes[
                    (unique_nodes >= 0) & (unique_nodes < num_nodes)
                ]
                self._node_visit_counts[unique_nodes] += 1
                self._trajectory_nodes[trajectory.traj_id] = unique_nodes
                touched.update(int(n) for n in unique_nodes)
            self._reelect_clusters_of_nodes(touched)
        self.version += 1
        return len(trajectories)

    def remove_trajectories(self, traj_ids: Sequence[int]) -> int:
        """Remove the given trajectories; returns the number removed.

        A batch pays the trajectory-registry rebuild and the sweep over the
        per-cluster trajectory lists once, instead of once per id.
        """
        removal_order = [int(t) for t in traj_ids]
        removed: set[int] = set()
        for traj_id in removal_order:
            if traj_id not in self._trajectory_rows or traj_id in removed:
                raise KeyError(f"trajectory {traj_id} is not indexed")
            removed.add(traj_id)
        if not removed:
            return 0
        self._trajectory_ids = [t for t in self._trajectory_ids if t not in removed]
        self._trajectory_rows = {
            traj_id: row for row, traj_id in enumerate(self._trajectory_ids)
        }
        for instance in self.instances:
            for cluster in instance.clusters:
                for traj_id in sorted(removed.intersection(cluster.trajectory_list)):
                    del cluster.trajectory_list[traj_id]
        if self._tracks_visits:
            self._ensure_writable_visit_counts()
            touched: set[int] = set()
            for traj_id in sorted(removed):
                unique_nodes = self._trajectory_nodes.pop(traj_id, None)
                if unique_nodes is None:
                    continue
                self._node_visit_counts[unique_nodes] -= 1
                touched.update(int(n) for n in unique_nodes)
            self._reelect_clusters_of_nodes(touched)
        self.version += 1
        return len(removed)

    def add_sites(self, sites: Sequence[int]) -> int:
        """Register candidate sites; returns how many were actually new.

        Already-registered sites are skipped (like :meth:`add_site`).  Each
        affected cluster re-elects its representative under the index's
        ``representative_strategy``, exactly as a fresh build would.
        """
        new_sites: list[int] = []
        new_site_set: set[int] = set()
        for site in sites:
            site = int(site)
            require(self.network.has_node(site), f"site {site} is not a network node")
            if site not in self.sites and site not in new_site_set:
                new_sites.append(site)
                new_site_set.add(site)
        if not new_sites:
            return 0
        self.sites.update(new_site_set)
        for instance in self.instances:
            affected: set[int] = set()
            for site in new_sites:
                cluster_id = instance.node_to_cluster.get(site)
                if cluster_id is None:
                    # node unseen by this instance (should not happen when the
                    # instance clustered every node); attach to nearest center
                    cluster_id = self._nearest_cluster(instance, site)
                    instance.node_to_cluster[site] = cluster_id
                    instance.invalidate_node_lookup()
                cluster = instance.clusters[cluster_id]
                if site not in cluster.nodes:
                    cluster.nodes[site] = self._round_trip_to_center(
                        cluster.center, site
                    )
                    instance.invalidate_node_lookup()
                affected.add(cluster_id)
            for cluster_id in sorted(affected):
                self._reelect(instance.clusters[cluster_id])
        self.version += 1
        return len(new_sites)

    def remove_sites(self, sites: Sequence[int]) -> int:
        """Unregister candidate sites; returns the number removed.

        Unknown sites raise ``KeyError``.  Only clusters whose current
        representative was removed re-elect — dropping a non-representative
        candidate can never change the election outcome.
        """
        removed: list[int] = []
        removed_set: set[int] = set()
        for site in sites:
            site = int(site)
            if site not in self.sites or site in removed_set:
                raise KeyError(f"site {site} is not a registered candidate site")
            removed_set.add(site)
            removed.append(site)
        if not removed:
            return 0
        self.sites.difference_update(removed_set)
        for instance in self.instances:
            affected: set[int] = set()
            for site in removed:
                cluster_id = instance.node_to_cluster.get(site)
                if (
                    cluster_id is not None
                    and instance.clusters[cluster_id].representative in removed_set
                ):
                    affected.add(cluster_id)
            for cluster_id in sorted(affected):
                self._reelect(instance.clusters[cluster_id])
        self.version += 1
        return len(removed)

    # ------------------------------------------------------------------ #
    # update internals
    # ------------------------------------------------------------------ #
    @property
    def _tracks_visits(self) -> bool:
        """Whether visit counts are maintained for ``most_frequent`` elections."""
        return (
            self.representative_strategy == "most_frequent"
            and self._node_visit_counts is not None
            and self._trajectory_nodes is not None
        )

    def _ensure_writable_visit_counts(self) -> None:
        """Copy-on-write the visit-count array before in-place mutation.

        A format-v4 load hands the index a read-only zero-copy view over the
        mmap'd payload blob; the first mutating update materialises a private
        writable copy, so updates never write through to the on-disk file.
        """
        if (
            self._node_visit_counts is not None
            and not self._node_visit_counts.flags.writeable
        ):
            self._node_visit_counts = np.array(self._node_visit_counts, dtype=np.int64)

    def _reelect(self, cluster: NetClusCluster) -> None:
        """Re-run the representative election of one cluster from scratch."""
        cluster.representative = None
        cluster.representative_round_trip_km = math.inf
        self._elect_representative(
            cluster, self.sites, self.representative_strategy, self._node_visit_counts
        )

    def _reelect_clusters_of_nodes(self, nodes: set[int]) -> None:
        """Re-elect every cluster containing one of *nodes* (all instances).

        Called when visit counts changed: under ``most_frequent`` a count
        change can flip the election anywhere the trajectory passed.
        """
        for instance in self.instances:
            affected = {
                cluster_id
                for node in nodes
                if (cluster_id := instance.node_to_cluster.get(node)) is not None
            }
            for cluster_id in sorted(affected):
                self._reelect(instance.clusters[cluster_id])

    def _shortest_path_engine(self) -> ShortestPathEngine:
        """The shared shortest-path engine (built once, reused by updates)."""
        if self._engine is None:
            self._engine = ShortestPathEngine(self.network)
        return self._engine

    def _nearest_cluster(self, instance: NetClusInstance, node: int) -> int:
        engine = self._shortest_path_engine()
        round_trip = engine.round_trip_from(node)
        centers = [cluster.center for cluster in instance.clusters]
        distances = [round_trip[center] for center in centers]
        return int(np.argmin(distances))

    def _round_trip_to_center(self, center: int, node: int) -> float:
        engine = self._shortest_path_engine()
        forward = engine.distances_from([center])[0][node]
        backward = engine.distances_to([center])[0][node]
        return float(forward + backward)

    # ------------------------------------------------------------------ #
    @property
    def num_instances(self) -> int:
        """Number of index instances t."""
        return len(self.instances)

    @property
    def num_trajectories(self) -> int:
        """Number of indexed trajectories."""
        return len(self._trajectory_ids)

    @property
    def trajectory_ids(self) -> list[int]:
        """Ids of the indexed trajectories, in registration order (copy)."""
        return list(self._trajectory_ids)

    def storage_bytes(self) -> int:
        """Total estimated index payload bytes across all instances."""
        return sum(instance.storage_bytes() for instance in self.instances)

    def build_seconds(self) -> float:
        """Total offline construction time across instances."""
        return sum(instance.build_seconds for instance in self.instances)

    def construction_statistics(self) -> list[dict[str, float]]:
        """Per-instance statistics in the spirit of Table 11."""
        stats = []
        for instance in self.instances:
            stats.append(
                {
                    "radius_km": instance.radius_km,
                    "num_clusters": instance.num_clusters,
                    "mean_dominating_set_size": instance.mean_dominating_set_size,
                    "mean_trajectory_list_size": instance.mean_trajectory_list_size(),
                    "mean_neighbor_count": instance.mean_neighbor_count(),
                    "build_seconds": instance.build_seconds,
                    "storage_bytes": instance.storage_bytes(),
                }
            )
        return stats
