"""Core TOPS / NetClus algorithms (the paper's contribution)."""

from repro.core.preference import (
    PreferenceFunction,
    BinaryPreference,
    LinearPreference,
    ExponentialPreference,
    ConvexProbabilityPreference,
    InconveniencePreference,
)
from repro.core.query import TOPSQuery, TOPSResult
from repro.core.distances import DistanceOracle
from repro.core.coverage import CoverageIndex, SparseCoverageIndex
from repro.core.shards import ShardedCoverage, shard_of
from repro.core.covcache import CoverageCache, CoveragePart
from repro.core.greedy import IncGreedy, LazyGreedy
from repro.core.fm_greedy import FMGreedy
from repro.core.optimal import OptimalSolver
from repro.core.gdsp import GreedyGDSP, Cluster
from repro.core.netclus import NetClusIndex, NetClusInstance
from repro.core.build import BuildStats, build_index
from repro.core.variants import (
    solve_tops_cost,
    solve_tops_capacity,
    solve_tops_with_existing,
    solve_tops_market_share,
)
from repro.core.baselines import top_k_by_traffic, random_sites, static_demand_greedy
from repro.core.jaccard import jaccard_clustering

__all__ = [
    "PreferenceFunction",
    "BinaryPreference",
    "LinearPreference",
    "ExponentialPreference",
    "ConvexProbabilityPreference",
    "InconveniencePreference",
    "TOPSQuery",
    "TOPSResult",
    "DistanceOracle",
    "CoverageIndex",
    "SparseCoverageIndex",
    "ShardedCoverage",
    "shard_of",
    "CoverageCache",
    "CoveragePart",
    "IncGreedy",
    "LazyGreedy",
    "FMGreedy",
    "OptimalSolver",
    "GreedyGDSP",
    "Cluster",
    "NetClusIndex",
    "NetClusInstance",
    "BuildStats",
    "build_index",
    "solve_tops_cost",
    "solve_tops_capacity",
    "solve_tops_with_existing",
    "solve_tops_market_share",
    "top_k_by_traffic",
    "random_sites",
    "static_demand_greedy",
    "jaccard_clustering",
]
