"""Staged offline build pipeline for the NetClus index.

The offline phase (Section 4 of the paper) decomposes into four explicit
stages, run in order over the whole instance ladder:

1. **clustering** — one Greedy-GDSP run per index instance.  The ``t``
   clusterings are mutually independent (each sees only the road network
   and its radius ``R_p``), which makes this stage the natural unit of
   parallelism: with ``workers > 1`` the per-instance work fans out over a
   ``multiprocessing`` pool whose workers are initialised with a picklable
   CSR payload of the network (:meth:`ShortestPathEngine.to_payload`) —
   no :class:`RoadNetwork` dictionaries ever cross the process boundary.
   The neighbour-list distance sweeps (stage 4's heavy part) ride along in
   the same per-instance task so a parallel build ships each instance to a
   worker exactly once.
2. **representatives** — per cluster, elect the representative candidate
   site under the index's ``representative_strategy``.
3. **registration** — register every trajectory into every instance via
   the shared lexsort + grouped-minimum kernel
   (:func:`repro.core.netclus.register_trajectory_batch`) — the same
   implementation the streaming update engine uses online.
4. **neighbors** — per cluster, the clusters whose centers lie within
   round-trip ``4 R_p (1 + γ)``.

Each stage produces a :class:`BuildStats` record (stage name, seconds,
per-instance breakdown, worker count) which the resulting index carries in
:attr:`NetClusIndex.build_stats`; ``save_index`` persists the records in
the manifest so ``inspect`` and the Table 11 driver can report the stage
breakdown of a loaded index.

**Parity guarantee.** ``workers=1`` is the exact sequential path; any
``workers > 1`` build is state-, selection- and serialization-identical to
it: every stage is deterministic (Greedy-GDSP's greedy order, FM-sketch
hashing, the registration kernel's insertion order, the neighbour sort),
so only wall-clock time changes.  ``benchmarks/bench_parallel_build.py``
and the CI parity step compare the serialized payloads byte for byte
(timings excluded — they are the one thing a parallel build legitimately
changes).
"""

from __future__ import annotations

import math
import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.core.gdsp import GDSPResult, GreedyGDSP
from repro.core.netclus import (
    NetClusCluster,
    NetClusIndex,
    NetClusInstance,
    register_trajectory_batch,
)
from repro.network.graph import RoadNetwork
from repro.network.shortest_path import ShortestPathEngine
from repro.trajectory.model import TrajectoryDataset
from repro.utils.parallel import resolve_workers
from repro.utils.timer import Timer
from repro.utils.validation import require, require_positive

__all__ = ["BuildStats", "build_index", "compute_neighbor_lists"]

#: the stage names, in pipeline order
STAGES = ("clustering", "representatives", "registration", "neighbors")


@dataclass(frozen=True)
class BuildStats:
    """One stage of the offline build pipeline.

    Attributes
    ----------
    stage:
        Stage name — one of ``"clustering"``, ``"representatives"``,
        ``"registration"``, ``"neighbors"``.
    seconds:
        Total work seconds of the stage, summed across instances.  For a
        parallel stage this is CPU work, not wall-clock (the whole build's
        wall-clock is what ``workers`` shrinks).
    workers:
        Number of processes the stage ran on (1 = in the build process).
    per_instance_seconds:
        The stage's seconds per index instance, in instance order.
    """

    stage: str
    seconds: float
    workers: int = 1
    per_instance_seconds: tuple[float, ...] = field(default_factory=tuple)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form (persisted in the index manifest)."""
        return {
            "stage": self.stage,
            "seconds": self.seconds,
            "workers": self.workers,
            "per_instance_seconds": list(self.per_instance_seconds),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "BuildStats":
        """Inverse of :meth:`as_dict` (manifest loading)."""
        return cls(
            stage=str(payload["stage"]),
            seconds=float(payload["seconds"]),
            workers=int(payload.get("workers", 1)),
            per_instance_seconds=tuple(
                float(s) for s in payload.get("per_instance_seconds", ())
            ),
        )


def compute_neighbor_lists(
    centers: Sequence[int],
    engine: ShortestPathEngine,
    radius_km: float,
    gamma: float,
) -> list[list[tuple[int, float]]]:
    """Neighbour lists ``CL(g_i)`` for one instance's cluster centers.

    For every cluster, the (cluster id, center round-trip distance) pairs
    of the clusters whose centers lie within round-trip
    ``4 R_p (1 + γ)``, sorted by distance (ties keep cluster-id order).
    """
    centers = list(centers)
    threshold = 4.0 * radius_km * (1.0 + gamma)
    forward = engine.distances_from(centers, limit=threshold)[:, centers]
    round_trip = forward + forward.T
    neighbor_lists: list[list[tuple[int, float]]] = []
    for i in range(len(centers)):
        neighbor_ids = np.flatnonzero(round_trip[i] <= threshold)
        neighbors = [
            (int(j), float(round_trip[i, j])) for j in neighbor_ids if int(j) != i
        ]
        neighbors.sort(key=lambda item: item[1])
        neighbor_lists.append(neighbors)
    return neighbor_lists


# ---------------------------------------------------------------------- #
# worker side
# ---------------------------------------------------------------------- #
#: per-worker shortest-path engine, rebuilt from the CSR payload once per
#: process by the pool initializer
_WORKER_ENGINE: ShortestPathEngine | None = None


def _init_worker(payload: dict[str, np.ndarray]) -> None:
    """Pool initializer: restore the shortest-path engine from CSR arrays."""
    global _WORKER_ENGINE
    _WORKER_ENGINE = ShortestPathEngine.from_payload(payload)


def _instance_task(
    task: tuple[int, float, float, bool, int, int],
) -> tuple[int, GDSPResult, list[list[tuple[int, float]]], float, float]:
    """One parallel unit: cluster one instance and sweep its neighbour lists.

    Returns ``(instance_id, gdsp_result, neighbor_lists, clustering_seconds,
    neighbors_seconds)``.  Runs in a pool worker against the process-local
    engine; everything it computes is deterministic in (network, radius).
    """
    instance_id, radius_km, gamma, use_fm_sketches, num_sketches, chunk_size = task
    engine = _WORKER_ENGINE
    gdsp = GreedyGDSP(
        None,
        engine=engine,
        use_fm_sketches=use_fm_sketches,
        num_sketches=num_sketches,
        chunk_size=chunk_size,
    )
    gdsp_result = gdsp.cluster(radius_km)
    with Timer() as neighbor_timer:
        neighbor_lists = compute_neighbor_lists(
            [cluster.center for cluster in gdsp_result.clusters],
            engine,
            radius_km,
            gamma,
        )
    return (
        instance_id,
        gdsp_result,
        neighbor_lists,
        gdsp_result.build_seconds,
        neighbor_timer.elapsed,
    )


# ---------------------------------------------------------------------- #
# the pipeline
# ---------------------------------------------------------------------- #
def build_index(
    network: RoadNetwork,
    dataset: TrajectoryDataset,
    sites: Sequence[int],
    *,
    gamma: float = 0.75,
    tau_min_km: float = 0.4,
    tau_max_km: float = 8.0,
    use_fm_sketches: bool = False,
    num_sketches: int = 30,
    gdsp_chunk_size: int = 512,
    max_instances: int | None = None,
    representative_strategy: str = "closest",
    workers: int | str = 1,
    mp_start_method: str | None = None,
) -> NetClusIndex:
    """Run the staged offline build pipeline; see the module docstring.

    Parameters mirror :meth:`NetClusIndex.build` (which delegates here).
    ``workers=1`` runs the exact sequential path; ``workers > 1`` fans the
    independent per-instance clustering (and neighbour sweeps) out over a
    ``multiprocessing`` pool and produces an identical index; ``"auto"``
    resolves to the usable-CPU count
    (:func:`repro.utils.parallel.resolve_workers`).  A worker
    that raises propagates its exception out of this function before any
    index object exists — a failed parallel build never yields a
    half-built index.
    """
    require_positive(gamma, "gamma")
    require_positive(tau_min_km, "tau_min_km")
    require(tau_max_km > tau_min_km, "tau_max_km must exceed tau_min_km")
    require(
        representative_strategy in ("closest", "most_frequent"),
        "representative_strategy must be 'closest' or 'most_frequent'",
    )
    workers = resolve_workers(workers)
    site_set = set(int(s) for s in sites)
    for site in sorted(site_set):
        require(network.has_node(site), f"site {site} is not a network node")

    num_instances = int(math.floor(math.log(tau_max_km / tau_min_km, 1.0 + gamma))) + 1
    if max_instances is not None:
        num_instances = min(num_instances, max_instances)
    base_radius = tau_min_km / 4.0
    radii = [base_radius * (1.0 + gamma) ** p for p in range(num_instances)]
    engine = ShortestPathEngine(network)
    visit_counts = dataset.node_visit_counts(network.num_nodes)
    stats: list[BuildStats] = []

    # stage 1 — per-instance GDSP clustering (the parallel stage); parallel
    # tasks also carry home the stage-4 neighbour sweeps so each instance
    # crosses the process boundary exactly once
    if workers > 1 and num_instances > 1:
        outcomes = _run_parallel_clustering(
            engine,
            radii,
            gamma,
            use_fm_sketches,
            num_sketches,
            gdsp_chunk_size,
            workers,
            mp_start_method,
        )
    else:
        workers = 1
        gdsp = GreedyGDSP(
            network,
            engine=engine,
            use_fm_sketches=use_fm_sketches,
            num_sketches=num_sketches,
            chunk_size=gdsp_chunk_size,
        )
        outcomes = []
        for radius in radii:
            gdsp_result = gdsp.cluster(radius)
            outcomes.append((gdsp_result, None, gdsp_result.build_seconds, 0.0))
    clustering_per_instance = [outcome[2] for outcome in outcomes]
    stats.append(
        BuildStats(
            stage="clustering",
            seconds=sum(clustering_per_instance),
            workers=workers,
            per_instance_seconds=tuple(clustering_per_instance),
        )
    )

    # stage 2 — representative election
    election_per_instance: list[float] = []
    instances: list[NetClusInstance] = []
    for instance_id, (gdsp_result, _, _, _) in enumerate(outcomes):
        with Timer() as election_timer:
            clusters: list[NetClusCluster] = []
            for gdsp_cluster in gdsp_result.clusters:
                cluster = NetClusCluster(
                    cluster_id=gdsp_cluster.cluster_id,
                    center=gdsp_cluster.center,
                    nodes=dict(
                        zip(gdsp_cluster.nodes, gdsp_cluster.node_round_trip_km)
                    ),
                )
                NetClusIndex._elect_representative(
                    cluster, site_set, representative_strategy, visit_counts
                )
                clusters.append(cluster)
            instance = NetClusInstance(
                instance_id=instance_id,
                radius_km=radii[instance_id],
                gamma=gamma,
                clusters=clusters,
                node_to_cluster=dict(gdsp_result.node_to_cluster),
                mean_dominating_set_size=gdsp_result.mean_dominating_set_size,
            )
            instances.append(instance)
        election_per_instance.append(election_timer.elapsed)
    stats.append(
        BuildStats(
            stage="representatives",
            seconds=sum(election_per_instance),
            per_instance_seconds=tuple(election_per_instance),
        )
    )

    # stage 3 — trajectory registration through the shared lexsort +
    # grouped-min kernel (also warms the per-instance node lookup tables
    # the streaming update engine reads on every batch)
    traj_ids = dataset.ids()
    node_arrays = [trajectory.nodes_array() for trajectory in dataset]
    registration_per_instance: list[float] = []
    for instance in instances:
        with Timer() as registration_timer:
            register_trajectory_batch(
                instance, network.num_nodes, traj_ids, node_arrays
            )
        registration_per_instance.append(registration_timer.elapsed)
    stats.append(
        BuildStats(
            stage="registration",
            seconds=sum(registration_per_instance),
            per_instance_seconds=tuple(registration_per_instance),
        )
    )

    # stage 4 — neighbour lists (already swept by the workers in a
    # parallel build; computed here on the shared engine otherwise)
    neighbors_per_instance: list[float] = []
    for instance, (_, neighbor_lists, _, neighbor_seconds) in zip(instances, outcomes):
        if neighbor_lists is None:
            with Timer() as neighbor_timer:
                neighbor_lists = compute_neighbor_lists(
                    [cluster.center for cluster in instance.clusters],
                    engine,
                    instance.radius_km,
                    gamma,
                )
            neighbor_seconds = neighbor_timer.elapsed
        for cluster, neighbors in zip(instance.clusters, neighbor_lists):
            cluster.neighbors = neighbors
        neighbors_per_instance.append(neighbor_seconds)
    stats.append(
        BuildStats(
            stage="neighbors",
            seconds=sum(neighbors_per_instance),
            workers=workers,
            per_instance_seconds=tuple(neighbors_per_instance),
        )
    )

    # per-instance build_seconds: that instance's share of every stage
    for position, instance in enumerate(instances):
        instance.build_seconds = (
            clustering_per_instance[position]
            + election_per_instance[position]
            + registration_per_instance[position]
            + neighbors_per_instance[position]
        )

    index = NetClusIndex(
        network=network,
        sites=site_set,
        instances=instances,
        tau_min_km=tau_min_km,
        tau_max_km=tau_max_km,
        gamma=gamma,
        trajectory_ids=traj_ids,
        representative_strategy=representative_strategy,
        node_visit_counts=(
            visit_counts if representative_strategy == "most_frequent" else None
        ),
        trajectory_nodes=(
            {t.traj_id: np.unique(t.nodes_array()) for t in dataset}
            if representative_strategy == "most_frequent"
            else None
        ),
        build_stats=stats,
        max_instances=max_instances,
    )
    index._engine = engine
    return index


def _run_parallel_clustering(
    engine: ShortestPathEngine,
    radii: Sequence[float],
    gamma: float,
    use_fm_sketches: bool,
    num_sketches: int,
    gdsp_chunk_size: int,
    workers: int,
    mp_start_method: str | None,
) -> list[tuple[GDSPResult, list[list[tuple[int, float]]], float, float]]:
    """Fan the per-instance tasks out over a process pool, in instance order.

    Workers are initialised once with the engine's CSR payload; tasks are
    scheduled one at a time (``chunksize=1``) so the skewed per-instance
    costs balance across the pool.  Any worker exception propagates out of
    ``pool.map`` and the pool is torn down before it reaches the caller.
    """
    payload = engine.to_payload()
    tasks = [
        (p, radius, gamma, use_fm_sketches, num_sketches, gdsp_chunk_size)
        for p, radius in enumerate(radii)
    ]
    context = multiprocessing.get_context(mp_start_method)
    processes = min(workers, len(tasks))
    with context.Pool(
        processes, initializer=_init_worker, initargs=(payload,)
    ) as pool:
        results = pool.map(_instance_task, tasks, chunksize=1)
    results.sort(key=lambda item: item[0])
    return [
        (gdsp_result, neighbor_lists, clustering_seconds, neighbor_seconds)
        for _, gdsp_result, neighbor_lists, clustering_seconds, neighbor_seconds in results
    ]
