"""Exact (optimal) TOPS solver.

The paper formulates the optimal algorithm as an integer program (Section 3.1
with the max-constraint linearisation of Appendix A.1) and solves it on the
small *Beijing-Small* dataset only (Fig. 4).  This module provides three
exact solvers with equivalent output:

* :meth:`OptimalSolver.solve` — a branch-and-bound over site subsets ordered
  by site weight, pruned with a submodularity-based upper bound (current
  utility plus the sum of the ``k − depth`` largest remaining *standalone
  residual* gains bounds any completion);
* :meth:`OptimalSolver.solve_ilp` — the integer-linear-programming route via
  ``scipy.optimize.milp`` (HiGHS).  Instead of the paper's recursive big-M
  linearisation of ``U_j ≤ max_i ψ_ji x_i`` we use the standard equivalent
  assignment formulation (``U_j = Σ_i ψ_ji z_ji`` with ``z_ji ≤ x_i`` and
  ``Σ_i z_ji ≤ 1``), which has the same optima without big-M constants;
* :meth:`OptimalSolver.solve_exhaustive` — plain enumeration of all
  k-subsets, used by tests to validate the other two.

All three return a true optimum; they are only practical for small ``n`` and
``k`` — exactly how the paper uses OPT.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.core.coverage import CoverageIndex
from repro.core.query import TOPSQuery, TOPSResult
from repro.utils.timer import Timer
from repro.utils.validation import require

__all__ = ["OptimalSolver"]


class OptimalSolver:
    """Exact TOPS solver by pruned subset search over a :class:`CoverageIndex`."""

    algorithm_name = "optimal"

    def __init__(self, coverage: CoverageIndex, max_sites: int = 64) -> None:
        require(
            coverage.num_sites <= max_sites,
            f"OptimalSolver is restricted to at most {max_sites} candidate sites; "
            "use Inc-Greedy or NetClus for larger instances",
        )
        self.coverage = coverage

    # ------------------------------------------------------------------ #
    def solve(self, query: TOPSQuery) -> TOPSResult:
        """Branch-and-bound exact solution."""
        with Timer() as timer:
            columns, utility = self._branch_and_bound(query.k)
        utilities = self.coverage.per_trajectory_utility(columns)
        return TOPSResult(
            sites=tuple(int(self.coverage.site_labels[c]) for c in columns),
            utility=float(utility),
            per_trajectory_utility=tuple(float(u) for u in utilities),
            elapsed_seconds=timer.elapsed,
            algorithm=self.algorithm_name,
            metadata={"method": "branch-and-bound"},
        )

    def solve_ilp(self, query: TOPSQuery) -> TOPSResult:
        """Exact solution via the integer-linear-programming formulation.

        Maximise ``Σ_j Σ_i ψ_ji z_ji`` subject to ``z_ji ≤ x_i``,
        ``Σ_i z_ji ≤ 1`` per trajectory, ``Σ_i x_i ≤ k``, ``x_i ∈ {0, 1}``
        and ``z_ji ≥ 0``; only (trajectory, site) pairs with positive score
        get a ``z`` variable, keeping the model sparse.
        """
        from scipy.optimize import LinearConstraint, milp
        from scipy.sparse import lil_matrix

        with Timer() as timer:
            scores = self.coverage.scores
            num_trajectories, num_sites = scores.shape
            pairs = [
                (j, i)
                for j in range(num_trajectories)
                for i in range(num_sites)
                if scores[j, i] > 0.0
            ]
            num_vars = num_sites + len(pairs)
            if not pairs:
                return TOPSResult(
                    sites=(),
                    utility=0.0,
                    per_trajectory_utility=tuple(0.0 for _ in range(num_trajectories)),
                    elapsed_seconds=timer.elapsed,
                    algorithm=self.algorithm_name,
                    metadata={"method": "ilp"},
                )
            # objective: maximise Σ ψ_ji z_ji  (milp minimises, so negate)
            objective = np.zeros(num_vars)
            for var, (j, i) in enumerate(pairs):
                objective[num_sites + var] = -scores[j, i]

            constraints = []
            # z_ji − x_i ≤ 0
            coupling = lil_matrix((len(pairs), num_vars))
            for var, (j, i) in enumerate(pairs):
                coupling[var, num_sites + var] = 1.0
                coupling[var, i] = -1.0
            constraints.append(LinearConstraint(coupling.tocsr(), -np.inf, 0.0))
            # Σ_i z_ji ≤ 1 per trajectory
            assignment = lil_matrix((num_trajectories, num_vars))
            for var, (j, i) in enumerate(pairs):
                assignment[j, num_sites + var] = 1.0
            constraints.append(LinearConstraint(assignment.tocsr(), -np.inf, 1.0))
            # Σ_i x_i ≤ k
            cardinality = np.zeros((1, num_vars))
            cardinality[0, :num_sites] = 1.0
            constraints.append(LinearConstraint(cardinality, -np.inf, float(query.k)))

            integrality = np.zeros(num_vars)
            integrality[:num_sites] = 1  # x_i binary, z_ji continuous
            bounds = (np.zeros(num_vars), np.ones(num_vars))
            from scipy.optimize import Bounds

            result = milp(
                c=objective,
                constraints=constraints,
                integrality=integrality,
                bounds=Bounds(*bounds),
            )
            require(result.success, f"ILP solver failed: {result.message}")
            x_values = result.x[:num_sites]
            columns = [int(i) for i in np.flatnonzero(x_values > 0.5)]
        utilities = self.coverage.per_trajectory_utility(columns)
        return TOPSResult(
            sites=tuple(int(self.coverage.site_labels[c]) for c in columns),
            utility=float(np.sum(utilities)),
            per_trajectory_utility=tuple(float(u) for u in utilities),
            elapsed_seconds=timer.elapsed,
            algorithm=self.algorithm_name,
            metadata={"method": "ilp", "milp_status": int(result.status)},
        )

    def solve_exhaustive(self, query: TOPSQuery) -> TOPSResult:
        """Exhaustive enumeration of all k-subsets (reference implementation)."""
        with Timer() as timer:
            best_utility = -np.inf
            best: tuple[int, ...] = ()
            k = min(query.k, self.coverage.num_sites)
            for subset in combinations(range(self.coverage.num_sites), k):
                utility = self.coverage.utility_of(list(subset))
                if utility > best_utility:
                    best_utility = utility
                    best = subset
        utilities = self.coverage.per_trajectory_utility(list(best))
        return TOPSResult(
            sites=tuple(int(self.coverage.site_labels[c]) for c in best),
            utility=float(best_utility),
            per_trajectory_utility=tuple(float(u) for u in utilities),
            elapsed_seconds=timer.elapsed,
            algorithm=self.algorithm_name,
            metadata={"method": "exhaustive"},
        )

    # ------------------------------------------------------------------ #
    def _branch_and_bound(self, k: int) -> tuple[list[int], float]:
        scores = self.coverage.scores
        num_sites = scores.shape[1]
        k = min(k, num_sites)
        # order sites by weight (descending) to find good incumbents early
        order = list(np.argsort(self.coverage.site_weights)[::-1])

        # incumbent from greedy gives a strong initial lower bound
        incumbent_cols, incumbent_util = self._greedy_incumbent(k)
        best_cols = list(incumbent_cols)
        best_util = incumbent_util

        def upper_bound(utilities: np.ndarray, candidates: list[int], slots: int) -> float:
            """Submodular bound: current + top-`slots` standalone residual gains."""
            if slots == 0 or not candidates:
                return float(utilities.sum())
            residual = np.maximum(
                scores[:, candidates] - utilities[:, np.newaxis], 0.0
            ).sum(axis=0)
            top = np.sort(residual)[::-1][:slots]
            return float(utilities.sum() + top.sum())

        def recurse(position: int, chosen: list[int], utilities: np.ndarray) -> None:
            nonlocal best_cols, best_util
            current = float(utilities.sum())
            if len(chosen) == k:
                if current > best_util:
                    best_util = current
                    best_cols = list(chosen)
                return
            remaining = order[position:]
            if len(chosen) + len(remaining) < k:
                return
            if upper_bound(utilities, remaining, k - len(chosen)) <= best_util + 1e-12:
                return
            for idx in range(len(remaining)):
                col = remaining[idx]
                new_utilities = np.maximum(utilities, scores[:, col])
                recurse(position + idx + 1, chosen + [col], new_utilities)

        recurse(0, [], np.zeros(scores.shape[0]))
        return best_cols, best_util

    def _greedy_incumbent(self, k: int) -> tuple[list[int], float]:
        from repro.core.greedy import greedy_max_coverage_columns

        columns, utilities = greedy_max_coverage_columns(self.coverage.scores, k)
        return columns, float(utilities.sum())
