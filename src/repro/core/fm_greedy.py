"""FM-sketch accelerated greedy (FMG, Section 3.5).

For the *binary* instance of TOPS, selecting the site with the largest
marginal utility is equivalent to selecting the site covering the largest
number of not-yet-covered trajectories.  FMG therefore keeps one FM sketch
family per site summarising its trajectory cover ``TC(s_i)``; the marginal
utility of a site given the already-selected set is estimated as

``estimate(union(covered_sketch, TC_sketch(s_i))) − estimate(covered_sketch)``

which needs only bitwise ORs of 32-bit words instead of set operations.

Implementation note: the paper scans sites in decreasing standalone-utility
order and stops early once the standalone utility cannot beat the best
marginal seen so far.  In this NumPy implementation all per-site unions and
estimates for one greedy iteration are evaluated in a single vectorised pass
over an ``(n, f)`` ``uint32`` bit matrix, which is faster than any early
termination in Python and preserves the same selections.
"""

from __future__ import annotations

import numpy as np

from repro.core.coverage import CoverageIndex, SparseCoverageIndex
from repro.core.query import TOPSQuery, TOPSResult
from repro.sketch.fm import FMSketchFamily
from repro.utils.timer import Timer
from repro.utils.validation import require

__all__ = ["FMGreedy"]

_PHI = 0.77351
_WORD_BITS = 32


def _estimate_rows(bits: np.ndarray) -> np.ndarray:
    """Vectorised FM estimate for each row of an ``(n, f)`` uint32 bit matrix."""
    inverted = (~bits).astype(np.uint32)
    isolated = inverted & (-inverted.astype(np.int64)).astype(np.uint32)
    lowest_unset = np.full(bits.shape, float(_WORD_BITS))
    nonzero = isolated != 0
    lowest_unset[nonzero] = np.log2(isolated[nonzero])
    return np.power(2.0, lowest_unset.mean(axis=1)) / _PHI


class FMGreedy:
    """FM-sketch greedy solver for the binary TOPS instance.

    Parameters
    ----------
    coverage:
        Coverage index built with a binary preference (``is_binary`` must be
        true).  Both the dense :class:`CoverageIndex` and the
        :class:`SparseCoverageIndex` work: the sketches only need each site's
        trajectory cover ``TC(s_i)``, which the sparse index serves straight
        from its CSC arrays.
    num_sketches:
        Number of FM sketch copies ``f`` (Table 8 studies this parameter).
    """

    algorithm_name = "fm-greedy"

    def __init__(
        self,
        coverage: CoverageIndex | SparseCoverageIndex,
        num_sketches: int = 30,
    ) -> None:
        require(
            getattr(coverage.preference, "is_binary", False),
            "FMGreedy requires a binary preference function (TOPS1)",
        )
        self.coverage = coverage
        self.num_sketches = num_sketches
        self._bits = self._build_site_bit_matrix()

    def _build_site_bit_matrix(self) -> np.ndarray:
        """One FM sketch family per site, stacked into an ``(n, f)`` matrix."""
        bits = np.zeros((self.coverage.num_sites, self.num_sketches), dtype=np.uint32)
        families: dict[int, FMSketchFamily] = {}
        # pre-hash each trajectory id once into a reusable one-item family
        for col in range(self.coverage.num_sites):
            covered = self.coverage.trajectories_covered(col)
            for row in covered:
                traj_id = int(self.coverage.trajectory_ids[row])
                family = families.get(traj_id)
                if family is None:
                    family = FMSketchFamily.from_items([traj_id], self.num_sketches)
                    families[traj_id] = family
                bits[col] |= family.bits
        return bits

    # ------------------------------------------------------------------ #
    def select(self, k: int) -> tuple[list[int], float, list[float]]:
        """Select *k* site columns; returns (columns, estimated utility, gains)."""
        require(k >= 1, "k must be >= 1")
        covered_bits = np.zeros(self.num_sketches, dtype=np.uint32)
        covered_estimate = 0.0
        selected: list[int] = []
        gains: list[float] = []
        blocked = np.zeros(self.coverage.num_sites, dtype=bool)
        for _ in range(min(k, self.coverage.num_sites)):
            unions = np.bitwise_or(self._bits, covered_bits[np.newaxis, :])
            estimates = _estimate_rows(unions)
            marginal = estimates - covered_estimate
            marginal[blocked] = -np.inf
            best = int(np.argmax(marginal))
            if not np.isfinite(marginal[best]):
                break
            selected.append(best)
            blocked[best] = True
            gains.append(float(marginal[best]))
            covered_bits = np.bitwise_or(covered_bits, self._bits[best])
            covered_estimate = float(
                _estimate_rows(covered_bits[np.newaxis, :])[0]
            )
        return selected, covered_estimate, gains

    # ------------------------------------------------------------------ #
    def solve(self, query: TOPSQuery) -> TOPSResult:
        """Run FM-greedy; the reported utility is the *exact* utility of the
        selected sites (the sketch only guides the selection)."""
        with Timer() as timer:
            columns, estimated, gains = self.select(query.k)
        utilities = self.coverage.per_trajectory_utility(columns)
        sites = tuple(int(self.coverage.site_labels[c]) for c in columns)
        return TOPSResult(
            sites=sites,
            utility=float(np.sum(utilities)),
            per_trajectory_utility=tuple(float(u) for u in utilities),
            elapsed_seconds=timer.elapsed,
            algorithm=self.algorithm_name,
            metadata={
                "estimated_utility": float(estimated),
                "num_sketches": self.num_sketches,
                "marginal_gains": gains,
            },
        )

    def storage_bytes(self) -> int:
        """Bytes held by the per-site sketches (4 bytes per copy per site)."""
        return int(self._bits.nbytes)
