"""Workload helpers: site costs and capacities for the TOPS extensions.

Section 8.7 assigns site costs from a normal distribution with mean 1.0 and a
swept standard deviation (floored at 0.1), and capacities from a normal
distribution whose mean is a percentage of the total trajectory count with a
standard deviation of 10% of the mean.  These helpers reproduce those
assignment rules.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["site_costs_normal", "site_capacities_normal"]


def site_costs_normal(
    num_sites: int,
    mean: float = 1.0,
    std: float = 0.5,
    min_cost: float = 0.1,
    seed: int | None = None,
) -> np.ndarray:
    """Per-site costs ~ N(mean, std), floored at *min_cost* (Fig. 7a / Fig. 9)."""
    require_positive(num_sites, "num_sites")
    require_non_negative(std, "std")
    rng = ensure_rng(seed)
    costs = rng.normal(mean, std, size=num_sites) if std > 0 else np.full(num_sites, mean)
    return np.maximum(costs, min_cost)


def site_capacities_normal(
    num_sites: int,
    num_trajectories: int,
    mean_fraction: float = 0.1,
    std_fraction_of_mean: float = 0.1,
    seed: int | None = None,
) -> np.ndarray:
    """Per-site capacities ~ N(mean, 0.1·mean) with mean a fraction of m (Fig. 7b)."""
    require_positive(num_sites, "num_sites")
    require_positive(num_trajectories, "num_trajectories")
    rng = ensure_rng(seed)
    mean = mean_fraction * num_trajectories
    std = std_fraction_of_mean * mean
    capacities = rng.normal(mean, std, size=num_sites)
    return np.maximum(np.round(capacities), 1.0)
