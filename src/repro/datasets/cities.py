"""Synthetic city datasets: New York, Atlanta, Bangalore analogues.

The paper generates traffic for these three cities with the MNTG generator to
study the effect of city geometry (Fig. 11): New York has a star topology,
Atlanta a mesh, Bangalore is polycentric.  We reproduce the topologies with
the generators in :mod:`repro.network.generators` and MNTG-like uniform
OD traffic from :mod:`repro.trajectory.generators`.
"""

from __future__ import annotations

from repro.datasets.base import DatasetBundle
from repro.network.generators import grid_network, polycentric_network, star_network
from repro.trajectory.generators import mntg_like_trajectories

__all__ = ["new_york_like", "atlanta_like", "bangalore_like"]


def new_york_like(num_trajectories: int = 400, seed: int = 7) -> DatasetBundle:
    """Star-topology city (New-York-like)."""
    network = star_network(num_arms=10, nodes_per_arm=45, spacing_km=0.35, num_rings=4)
    trajectories = mntg_like_trajectories(network, num_trajectories, seed=seed)
    return DatasetBundle(
        name="New-York-like (star)",
        network=network,
        trajectories=trajectories,
        sites=network.node_ids(),
    )


def atlanta_like(num_trajectories: int = 400, seed: int = 7) -> DatasetBundle:
    """Mesh-topology city (Atlanta-like)."""
    network = grid_network(22, 22, spacing_km=0.45, jitter=0.05, seed=seed)
    trajectories = mntg_like_trajectories(network, num_trajectories, seed=seed)
    return DatasetBundle(
        name="Atlanta-like (mesh)",
        network=network,
        trajectories=trajectories,
        sites=network.node_ids(),
    )


def bangalore_like(num_trajectories: int = 400, seed: int = 7) -> DatasetBundle:
    """Polycentric city (Bangalore-like); smallest road network of the three."""
    network = polycentric_network(
        num_centers=5, grid_size=9, spacing_km=0.4, center_spread_km=4.5, seed=seed
    )
    trajectories = mntg_like_trajectories(network, num_trajectories, seed=seed)
    return DatasetBundle(
        name="Bangalore-like (polycentric)",
        network=network,
        trajectories=trajectories,
        sites=network.node_ids(),
    )
