"""Beijing-like datasets.

The paper's primary dataset is the T-Drive taxi GPS corpus map-matched onto
the OpenStreetMap Beijing road network (269,686 nodes, 123,179 trajectories).
Neither resource is available offline, so :func:`beijing_like` builds a
ring-radial network (Beijing's ring-road structure) and a commuter/taxi OD
trajectory mix at a configurable scale; :func:`beijing_small_like` mirrors the
*Beijing-Small* sample (1,000 trajectories, 50 candidate sites drawn from a
restricted area) used for the comparison against the optimal algorithm.

Both builders are deterministic for a given ``seed`` and ``scale``.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import DatasetBundle
from repro.network.generators import ring_radial_network
from repro.trajectory.generators import CommuterModel
from repro.utils.rng import ensure_rng
from repro.utils.validation import require

__all__ = ["beijing_like", "beijing_small_like"]


def beijing_like(
    scale: str = "small",
    seed: int = 42,
    sites: str = "all",
) -> DatasetBundle:
    """Build a Beijing-like dataset.

    Parameters
    ----------
    scale:
        ``"tiny"`` (~250 nodes, 150 trajectories — unit tests),
        ``"small"`` (~900 nodes, 600 trajectories — default experiments), or
        ``"medium"`` (~2,300 nodes, 1,500 trajectories — scalability runs).
    seed:
        RNG seed controlling both network jitter and trajectory generation.
    sites:
        ``"all"`` — every node is a candidate site (the paper's default), or
        ``"half"`` — a random half of the nodes.
    """
    presets = {
        "tiny": dict(num_rings=4, nodes_per_ring=32, core_grid=6, trajectories=150),
        "small": dict(num_rings=7, nodes_per_ring=80, core_grid=14, trajectories=600),
        "medium": dict(num_rings=10, nodes_per_ring=150, core_grid=24, trajectories=1500),
    }
    require(scale in presets, f"scale must be one of {sorted(presets)}")
    preset = presets[scale]
    network = ring_radial_network(
        num_rings=preset["num_rings"],
        nodes_per_ring=preset["nodes_per_ring"],
        ring_spacing_km=0.9,
        core_grid=preset["core_grid"],
        core_spacing_km=0.35,
    )
    model = CommuterModel(
        network,
        num_hotspots=8,
        hotspot_radius_km=1.2,
        background_fraction=0.35,
        perturbation=0.35,
        seed=seed,
    )
    trajectories = model.generate(preset["trajectories"])
    site_list = _select_sites(network.node_ids(), sites, seed)
    return DatasetBundle(
        name=f"Beijing-like ({scale})",
        network=network,
        trajectories=trajectories,
        sites=site_list,
    )


def beijing_small_like(
    num_trajectories: int = 200,
    num_sites: int = 50,
    seed: int = 42,
) -> DatasetBundle:
    """Beijing-Small analogue: few trajectories, 50 candidate sites.

    The paper samples 1,000 trajectories and 50 sites from a fixed area of the
    Beijing data to make the exponential optimal algorithm feasible; we use a
    smaller trajectory count by default because the exact solver (branch and
    bound in pure Python) is the bottleneck, not the data.
    """
    bundle = beijing_like(scale="tiny", seed=seed)
    rng = ensure_rng(seed)
    trajectories = bundle.trajectories
    if num_trajectories < len(trajectories):
        trajectories = trajectories.sample(num_trajectories, seed=seed)
    # restrict candidate sites to nodes actually visited so that the small
    # instance remains interesting (as in the paper's fixed-area sampling)
    visit_counts = trajectories.node_visit_counts(bundle.network.num_nodes)
    visited = np.flatnonzero(visit_counts > 0)
    if len(visited) >= num_sites:
        chosen = rng.choice(visited, size=num_sites, replace=False)
    else:
        others = np.setdiff1d(np.arange(bundle.network.num_nodes), visited)
        extra = rng.choice(others, size=num_sites - len(visited), replace=False)
        chosen = np.concatenate([visited, extra])
    return DatasetBundle(
        name="Beijing-Small-like",
        network=bundle.network,
        trajectories=trajectories,
        sites=sorted(int(s) for s in chosen),
    )


def _select_sites(node_ids: list[int], sites: str, seed: int) -> list[int]:
    if sites == "all":
        return list(node_ids)
    if sites == "half":
        rng = ensure_rng(seed)
        chosen = rng.choice(node_ids, size=len(node_ids) // 2, replace=False)
        return sorted(int(s) for s in chosen)
    raise ValueError("sites must be 'all' or 'half'")
