"""Common container for benchmark datasets."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.problem import TOPSProblem
from repro.network.graph import RoadNetwork
from repro.trajectory.model import TrajectoryDataset

__all__ = ["DatasetBundle"]


@dataclass
class DatasetBundle:
    """A named (network, trajectories, candidate sites) bundle.

    The paper's datasets (Table 6) pair a road network with a trajectory set
    and take every network node as a candidate site unless stated otherwise;
    the bundles built by :mod:`repro.datasets` follow the same convention at
    a scale that runs comfortably on a laptop.
    """

    name: str
    network: RoadNetwork
    trajectories: TrajectoryDataset
    sites: list[int]

    @property
    def num_nodes(self) -> int:
        """Number of road-network nodes."""
        return self.network.num_nodes

    @property
    def num_trajectories(self) -> int:
        """Number of trajectories."""
        return len(self.trajectories)

    @property
    def num_sites(self) -> int:
        """Number of candidate sites."""
        return len(self.sites)

    def problem(self) -> TOPSProblem:
        """Wrap the bundle into a :class:`TOPSProblem`."""
        return TOPSProblem(self.network, self.trajectories, self.sites)

    def summary(self) -> dict[str, int | str]:
        """One row of the Table-6-style dataset summary."""
        return {
            "dataset": self.name,
            "nodes": self.num_nodes,
            "trajectories": self.num_trajectories,
            "sites": self.num_sites,
        }
