"""Dataset builders mirroring Table 6 of the paper (at reduced scale)."""

from repro.datasets.base import DatasetBundle
from repro.datasets.beijing import beijing_like, beijing_small_like
from repro.datasets.cities import new_york_like, atlanta_like, bangalore_like
from repro.datasets.workloads import site_costs_normal, site_capacities_normal

__all__ = [
    "DatasetBundle",
    "beijing_like",
    "beijing_small_like",
    "new_york_like",
    "atlanta_like",
    "bangalore_like",
    "site_costs_normal",
    "site_capacities_normal",
]
