"""Argument-validation helpers.

These raise ``ValueError`` with uniform, descriptive messages so that public
API functions can validate inputs in one line each.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "require",
    "require_positive",
    "require_non_negative",
    "require_probability",
]


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> None:
    """Validate that *value* is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def require_non_negative(value: float, name: str) -> None:
    """Validate that *value* is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def require_probability(value: float, name: str) -> None:
    """Validate that *value* lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")


def require_type(value: Any, expected: type, name: str) -> None:
    """Validate that *value* is an instance of *expected*."""
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be a {expected.__name__}, got {type(value).__name__}"
        )
