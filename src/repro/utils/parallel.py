"""Worker-count resolution shared by every parallel surface.

Everything in the library that accepts a ``workers`` knob — the offline
build (``NetClusIndex.build``/``build_index``), the service CLI, the
experiment harness (``run_all``), the placement service's
``query_workers`` and the benchmarks — accepts either a positive integer
or the string ``"auto"``.  ``"auto"`` resolves to the number of CPUs this
process may *actually* schedule on (the cgroup/affinity-aware count), not
the machine-wide ``os.cpu_count()``: on a two-core CI container a request
for "all the cores" must come back 2, not the host's 64, or the pool
oversubscribes and runs slower than sequential.
"""

from __future__ import annotations

import os

__all__ = ["usable_cpu_count", "resolve_workers", "capped_cpu_workers"]


def usable_cpu_count() -> int:
    """CPUs this process may actually schedule on (affinity/cgroup-aware).

    Prefers ``os.process_cpu_count`` (Python 3.13+), then the Linux
    scheduler affinity mask, then ``os.cpu_count()``; never less than 1.
    """
    counter = getattr(os, "process_cpu_count", None)
    if counter is not None:  # pragma: no cover - Python 3.13+
        count = counter()
        if count:
            return max(1, int(count))
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def capped_cpu_workers(cap: int) -> int:
    """``min(cap, usable CPUs)`` — the shared benchmark pool-sizing rule.

    Benchmarks that document an N-way measurement (e.g. "a 4-worker
    build") size their pools with this so a container with fewer usable
    CPUs never oversubscribes; both the parallel-build and sharded-query
    benchmarks use it.
    """
    return min(int(cap), usable_cpu_count())


def resolve_workers(workers: int | str) -> int:
    """Resolve a ``workers`` knob to a concrete positive worker count.

    ``"auto"`` (case-insensitive) resolves to :func:`usable_cpu_count`;
    integers (or integer-valued strings, as argparse hands them over) are
    validated to be >= 1.
    """
    if isinstance(workers, str):
        if workers.strip().lower() == "auto":
            return usable_cpu_count()
        try:
            workers = int(workers)
        except ValueError:
            raise ValueError(
                f"workers must be a positive integer or 'auto', got {workers!r}"
            ) from None
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1 or 'auto', got {workers}")
    return workers
