"""Random-number-generator helpers.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``.  ``ensure_rng`` normalises all
three into a ``Generator`` so that experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng"]


def ensure_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, or an existing generator
        (returned unchanged).

    Examples
    --------
    >>> rng = ensure_rng(42)
    >>> ensure_rng(rng) is rng
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
