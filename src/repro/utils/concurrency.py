"""Declarative lock-discipline markers checked by ``repro.analysis``.

The repo's concurrency contract — service state is mutated only inside the
writer critical section, counters only under their mutex — was previously
enforced by runtime hammer tests that must get lucky.  This module makes
the contract *declarative* so the static lock-discipline checker
(``repro.analysis.locks``, rules RA005/RA006) can prove it structurally:

* :func:`guarded_by` — a class decorator declaring that a set of mutable
  attributes may only be read or written while ``self.<lock>`` is held::

      @guarded_by("_lock", "parts", "hits", "misses")
      class CoverageCache: ...

  With ``rw=True`` the named lock is a readers-writer lock exposing
  ``read_locked()`` / ``write_locked()`` context managers: guarded reads
  are legal under either mode, guarded *writes* only under
  ``write_locked()`` (rule RA006 flags a write under a read lock).

* :func:`holds_lock` — a method decorator declaring that every caller of
  the method already holds the named lock (private helpers invoked from
  inside a critical section)::

      @holds_lock("_lock")
      def _materialise(self, ...): ...

* :func:`kernel` — a method decorator marking a numeric hot-path kernel.
  The allocation-discipline checker (rule RA010) flags per-call
  ``np.zeros`` / ``np.empty`` / ``.astype`` temporaries inside marked
  functions — kernels are expected to reuse scratch buffers via ``out=``
  arguments.  At runtime the marker doubles as the kernel-timing hook:
  when the bound instance carries a non-``None`` ``kernel_timer``
  attribute (see :class:`repro.utils.timer.KernelTimer`), each call's
  wall-clock duration is recorded under the function's name; without a
  timer attached the wrapper is a single attribute lookup.

The markers are otherwise **no-ops at runtime** apart from recording
their declarations: :func:`guarded_by` stores a ``__guarded_attributes__``
mapping on the class (and in a module registry for introspection),
:func:`holds_lock` stamps ``__holds_locks__`` on the function, and
:func:`kernel` stamps ``__is_kernel__``.  The static analyzer reads the
decorators syntactically from the AST — it never imports the analysed
code — so the markers double as documentation that cannot silently rot: a
guarded attribute touched outside its critical section (or a kernel
allocating fresh temporaries) fails ``python -m repro.analysis`` (and CI)
at commit time.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping, TypeVar, cast

__all__ = [
    "GuardSpec",
    "guard_registry",
    "guarded_attributes",
    "guarded_by",
    "held_locks",
    "holds_lock",
    "is_kernel",
    "kernel",
]

_C = TypeVar("_C", bound=type)
_F = TypeVar("_F", bound=Callable)

#: attribute the class decorator stores its declarations under
GUARD_ATTRIBUTE = "__guarded_attributes__"
#: attribute the method decorator stores its declarations under
HOLDS_ATTRIBUTE = "__holds_locks__"
#: attribute the kernel decorator stamps on marked functions
KERNEL_ATTRIBUTE = "__is_kernel__"


@dataclass(frozen=True)
class GuardSpec:
    """The guard declaration of one attribute.

    ``lock`` is the attribute name of the lock object on the same
    instance; ``rw`` marks a readers-writer lock (``read_locked()`` /
    ``write_locked()`` context managers) whose read mode does not license
    writes.
    """

    lock: str
    rw: bool = False


#: class -> {attribute: GuardSpec} for every decorated class (introspection)
_REGISTRY: dict[type, dict[str, GuardSpec]] = {}


def guarded_by(lock: str, *attributes: str, rw: bool = False) -> Callable[[_C], _C]:
    """Declare that *attributes* of the decorated class are guarded by *lock*.

    Stackable — declare several locks on one class with one decorator per
    lock.  The declarations merge into ``cls.__guarded_attributes__``; a
    later declaration for an already-guarded attribute replaces the
    earlier one (nearest decorator to the class wins last).
    """
    if not isinstance(lock, str) or not lock:
        raise TypeError("guarded_by() needs a non-empty lock attribute name")
    if not attributes:
        raise TypeError("guarded_by() needs at least one guarded attribute name")
    spec = GuardSpec(lock=lock, rw=bool(rw))

    def decorate(cls: _C) -> _C:
        # copy: subclasses must not mutate a base class's declaration table
        table = dict(getattr(cls, GUARD_ATTRIBUTE, {}))
        for attribute in attributes:
            if not isinstance(attribute, str) or not attribute:
                raise TypeError(f"bad guarded attribute name: {attribute!r}")
            table[attribute] = spec
        setattr(cls, GUARD_ATTRIBUTE, table)
        _REGISTRY[cls] = table
        return cls

    return decorate


def holds_lock(lock: str) -> Callable[[_F], _F]:
    """Declare that the decorated method runs with *lock* already held.

    The static checker then treats the whole method body as inside the
    critical section (exclusive mode).  The contract that every caller
    really does hold the lock is the caller's to keep — declare it only on
    private helpers whose call sites are all inside ``with self.<lock>``
    blocks.
    """
    if not isinstance(lock, str) or not lock:
        raise TypeError("holds_lock() needs a non-empty lock attribute name")

    def decorate(func: _F) -> _F:
        held = set(getattr(func, HOLDS_ATTRIBUTE, frozenset())) | {lock}
        func.__holds_locks__ = frozenset(held)
        return func

    return decorate


def kernel(func: _F) -> _F:
    """Mark a numeric hot-path kernel (allocation discipline + timing).

    The static allocation checker (rule RA010) flags fresh ``np.zeros`` /
    ``np.empty`` / ``.astype`` arrays inside marked functions: a kernel
    runs on every greedy step, so its temporaries must come from reused
    scratch buffers (``out=`` arguments), with the only sanctioned
    exception being the escaping result array (suppress with a justified
    ``# noqa: RA010``).

    At runtime the wrapper records per-call wall-clock seconds on the
    instance's ``kernel_timer`` when one is attached (see
    ``attach_kernel_timer`` on the coverage classes); with no timer the
    overhead is one attribute lookup.
    """
    name = func.__name__

    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        timer = getattr(args[0], "kernel_timer", None) if args else None
        if timer is None:
            return func(*args, **kwargs)
        started = time.perf_counter()
        try:
            return func(*args, **kwargs)
        finally:
            timer.record(name, time.perf_counter() - started)

    wrapper.__is_kernel__ = True  # type: ignore[attr-defined]
    return cast(_F, wrapper)


def is_kernel(func: Callable) -> bool:
    """Whether *func* was marked with :func:`kernel`."""
    return bool(getattr(func, KERNEL_ATTRIBUTE, False))


def guarded_attributes(cls: type) -> Mapping[str, GuardSpec]:
    """The merged ``{attribute: GuardSpec}`` declarations of *cls* (may be empty)."""
    return dict(getattr(cls, GUARD_ATTRIBUTE, {}))


def held_locks(func: Callable) -> frozenset[str]:
    """The locks a callable declared via :func:`holds_lock` (may be empty)."""
    return frozenset(getattr(func, HOLDS_ATTRIBUTE, frozenset()))


def guard_registry() -> Mapping[type, Mapping[str, GuardSpec]]:
    """Snapshot of every ``guarded_by``-decorated class seen so far."""
    return {cls: dict(table) for cls, table in _REGISTRY.items()}
