"""Small shared utilities: RNG handling, timing, validation, size estimates."""

from repro.utils.rng import ensure_rng
from repro.utils.timer import Timer
from repro.utils.validation import (
    require,
    require_non_negative,
    require_positive,
    require_probability,
)
from repro.utils.sizeof import deep_getsizeof

__all__ = [
    "ensure_rng",
    "Timer",
    "require",
    "require_non_negative",
    "require_positive",
    "require_probability",
    "deep_getsizeof",
]
