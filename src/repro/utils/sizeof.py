"""Recursive object-size estimation.

The paper reports index/covering-set memory footprints (Table 9, Table 7).
Python object overheads differ wildly from the authors' Java implementation,
so the experiment harness reports an estimated byte count of the payload data
structures.  ``deep_getsizeof`` walks containers and NumPy arrays and sums
their sizes, which preserves the *relative* ordering across algorithms.
"""

from __future__ import annotations

import sys
from collections.abc import Mapping
from typing import Any

import numpy as np

__all__ = ["deep_getsizeof"]


def deep_getsizeof(obj: Any, _seen: set[int] | None = None) -> int:
    """Return an estimate of the total bytes reachable from *obj*.

    Handles nested dicts, lists, tuples, sets, dataclass-like objects with
    ``__dict__``/``__slots__``, and NumPy arrays (counted by ``nbytes``).
    Shared objects are counted once.
    """
    if _seen is None:
        _seen = set()
    oid = id(obj)
    if oid in _seen:
        return 0
    _seen.add(oid)

    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + sys.getsizeof(obj, 0)

    size = sys.getsizeof(obj, 0)

    if isinstance(obj, Mapping):
        for key, value in obj.items():
            size += deep_getsizeof(key, _seen)
            size += deep_getsizeof(value, _seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += deep_getsizeof(item, _seen)
    else:
        attrs = getattr(obj, "__dict__", None)
        if attrs is not None:
            size += deep_getsizeof(attrs, _seen)
        slots = getattr(obj, "__slots__", ())
        for slot in slots:
            if hasattr(obj, slot):
                size += deep_getsizeof(getattr(obj, slot), _seen)
    return size
