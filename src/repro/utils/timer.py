"""Wall-clock timing helpers used across the experiment harness.

:class:`Timer` is the simple stopwatch the drivers wrap phases with;
:class:`KernelTimer` is the per-kernel profiler the ``@kernel`` decorator
(:mod:`repro.utils.concurrency`) records into when a coverage index has a
timer attached.  Both read the clock *here*, outside the result-affecting
modules, so the determinism rules (RA004) keep their guarantee that no
kernel's output depends on wall-clock reads.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = ["KernelTimer", "Timer"]


@dataclass
class Timer:
    """A simple context-manager stopwatch.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start

    def start(self) -> "Timer":
        """Start (or restart) the stopwatch."""
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and return the elapsed seconds."""
        self.elapsed = time.perf_counter() - self._start
        return self.elapsed


class KernelTimer:
    """Thread-safe per-kernel call counts and cumulative seconds.

    One instance is attached to every coverage index a
    :class:`~repro.service.placement.PlacementService` prepares
    (``attach_kernel_timer``); the ``@kernel`` decorator then records each
    ``marginal_gains`` / ``gain_updates`` / ``absorb`` / ``marginal_gain``
    call into it.  ``snapshot()`` feeds ``ServiceStats.stage_seconds()``
    and the ``/metrics`` endpoint.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._calls: dict[str, int] = {}
        self._seconds: dict[str, float] = {}

    def record(self, name: str, seconds: float) -> None:
        """Add one call of *name* that took *seconds*."""
        with self._lock:
            self._calls[name] = self._calls.get(name, 0) + 1
            self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    def snapshot(self) -> dict[str, tuple[int, float]]:
        """``{kernel: (calls, seconds)}``, sorted by kernel name."""
        with self._lock:
            return {
                name: (self._calls[name], self._seconds[name])
                for name in sorted(self._calls)
            }

    def seconds(self) -> dict[str, float]:
        """``{kernel: cumulative seconds}`` (sorted)."""
        return {name: secs for name, (_, secs) in self.snapshot().items()}

    def calls(self) -> dict[str, int]:
        """``{kernel: call count}`` (sorted)."""
        return {name: count for name, (count, _) in self.snapshot().items()}

    def reset(self) -> None:
        """Drop all recorded counts and seconds."""
        with self._lock:
            self._calls.clear()
            self._seconds.clear()
