"""Probabilistic counting substrate (Flajolet-Martin sketches)."""

from repro.sketch.fm import FMSketch, FMSketchFamily

__all__ = ["FMSketch", "FMSketchFamily"]
