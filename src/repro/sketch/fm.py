"""Flajolet-Martin (FM) distinct-count sketches.

Section 3.5 of the paper replaces the per-site trajectory-cover lists with FM
sketches so that Inc-Greedy's marginal-utility updates become cheap bitwise
OR operations.  Each sketch is a 32-bit word (the paper's choice); ``f``
independent copies with different hash seeds are averaged to reduce the
estimation error (Table 8 studies the effect of ``f``).

The classic FM estimator for a single bit vector is ``2^R / phi`` where ``R``
is the index of the lowest unset bit and ``phi ≈ 0.77351`` is the FM
correction constant.  With ``f`` copies the mean of the ``R`` values is used
before exponentiation, as in the original paper by Flajolet and Martin.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.utils.validation import require, require_positive

__all__ = ["FMSketch", "FMSketchFamily"]

_PHI = 0.77351
_WORD_BITS = 32
_MASK = (1 << _WORD_BITS) - 1


def _splitmix64(value: int) -> int:
    """Deterministic 64-bit mix used as the per-copy hash function."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def _rho(hashed: int) -> int:
    """Index of the least-significant set bit (0-based), capped at 31."""
    if hashed == 0:
        return _WORD_BITS - 1
    return min((hashed & -hashed).bit_length() - 1, _WORD_BITS - 1)


class FMSketch:
    """A family-of-one FM sketch; see :class:`FMSketchFamily` for ``f`` copies."""

    __slots__ = ("seed", "bits")

    def __init__(self, seed: int = 0, bits: int = 0) -> None:
        self.seed = seed
        self.bits = bits & _MASK

    def add(self, item: int) -> None:
        """Hash *item* and set the corresponding bit."""
        hashed = _splitmix64(item ^ (self.seed * 0x5BD1E995 + 0x1B873593))
        self.bits |= 1 << _rho(hashed)

    def union(self, other: "FMSketch") -> "FMSketch":
        """Return the sketch of the union of the two underlying sets."""
        require(self.seed == other.seed, "can only union sketches with equal seeds")
        return FMSketch(self.seed, self.bits | other.bits)

    def union_in_place(self, other: "FMSketch") -> None:
        """OR *other* into this sketch."""
        require(self.seed == other.seed, "can only union sketches with equal seeds")
        self.bits |= other.bits

    def lowest_unset_bit(self) -> int:
        """Return the index of the lowest zero bit of the bit vector."""
        bits = self.bits
        idx = 0
        while bits & 1:
            bits >>= 1
            idx += 1
        return idx

    def estimate(self) -> float:
        """FM cardinality estimate from this single copy."""
        return (2 ** self.lowest_unset_bit()) / _PHI

    def copy(self) -> "FMSketch":
        """Return an independent copy."""
        return FMSketch(self.seed, self.bits)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FMSketch)
            and other.seed == self.seed
            and other.bits == self.bits
        )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"FMSketch(seed={self.seed}, bits={self.bits:032b})"


class FMSketchFamily:
    """``f`` independent FM sketches summarising one set of integer items.

    The family supports insertion, union (bitwise OR across matching copies)
    and cardinality estimation.  All copies are stored in a single NumPy
    ``uint32`` vector so that unions across many families vectorise.
    """

    __slots__ = ("num_copies", "bits")

    def __init__(self, num_copies: int = 30, bits: np.ndarray | None = None) -> None:
        require_positive(num_copies, "num_copies")
        self.num_copies = num_copies
        if bits is None:
            self.bits = np.zeros(num_copies, dtype=np.uint32)
        else:
            require(len(bits) == num_copies, "bits length must equal num_copies")
            self.bits = bits.astype(np.uint32, copy=True)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_items(cls, items: Iterable[int], num_copies: int = 30) -> "FMSketchFamily":
        """Build a family summarising *items*."""
        family = cls(num_copies)
        for item in items:
            family.add(int(item))
        return family

    def add(self, item: int) -> None:
        """Insert *item* into every copy."""
        for copy_idx in range(self.num_copies):
            hashed = _splitmix64(item ^ (copy_idx * 0x5BD1E995 + 0x1B873593))
            self.bits[copy_idx] |= np.uint32(1 << _rho(hashed))

    # ------------------------------------------------------------------ #
    def union(self, other: "FMSketchFamily") -> "FMSketchFamily":
        """Return the family summarising the union of the two sets."""
        require(
            other.num_copies == self.num_copies,
            "families must have the same number of copies",
        )
        return FMSketchFamily(self.num_copies, np.bitwise_or(self.bits, other.bits))

    def union_in_place(self, other: "FMSketchFamily") -> None:
        """OR *other* into this family."""
        require(
            other.num_copies == self.num_copies,
            "families must have the same number of copies",
        )
        np.bitwise_or(self.bits, other.bits, out=self.bits)

    @staticmethod
    def union_bits(bits_a: np.ndarray, bits_b: np.ndarray) -> np.ndarray:
        """Vectorised OR of two raw bit arrays (used in tight greedy loops)."""
        return np.bitwise_or(bits_a, bits_b)

    # ------------------------------------------------------------------ #
    def estimate(self) -> float:
        """Estimate the number of distinct inserted items."""
        return self.estimate_from_bits(self.bits)

    @staticmethod
    def estimate_from_bits(bits: np.ndarray) -> float:
        """Cardinality estimate from a raw ``uint32`` bit array of copies."""
        lowest_unset = FMSketchFamily._lowest_unset_bits(bits)
        return float(2.0 ** np.mean(lowest_unset) / _PHI)

    @staticmethod
    def _lowest_unset_bits(bits: np.ndarray) -> np.ndarray:
        inverted = ~bits
        # lowest set bit of the inverted word == lowest unset bit of the word
        isolated = inverted & (-inverted.astype(np.int64)).astype(np.uint32)
        # log2 of an isolated bit gives its index; isolated is never 0 because
        # a 32-bit word cannot have all 2^32 positions set by _rho (capped 31)
        # unless every bit is set, in which case report 32.
        result = np.zeros(len(bits), dtype=np.float64)
        nonzero = isolated != 0
        result[nonzero] = np.log2(isolated[nonzero])
        result[~nonzero] = _WORD_BITS
        return result

    def copy(self) -> "FMSketchFamily":
        """Return an independent copy of the family."""
        return FMSketchFamily(self.num_copies, self.bits.copy())

    def is_empty(self) -> bool:
        """Return ``True`` if no item has been inserted."""
        return not self.bits.any()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FMSketchFamily)
            and other.num_copies == self.num_copies
            and bool(np.array_equal(other.bits, self.bits))
        )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"FMSketchFamily(f={self.num_copies}, estimate={self.estimate():.1f})"
