"""repro — a reproduction of NetClus (ICDE 2017).

Trajectory-aware top-k facility location on road networks: the TOPS query,
the Inc-Greedy and FM-sketch greedy heuristics, the exact solver, and the
NetClus multi-resolution clustering index, together with the road-network and
trajectory substrates, dataset builders, and the experiment harness that
regenerates every table and figure of the paper's evaluation.

Quickstart
----------
>>> from repro import TOPSProblem, TOPSQuery
>>> from repro.network import grid_network
>>> from repro.trajectory import commuter_trajectories
>>> net = grid_network(10, 10, spacing_km=0.5)
>>> trajs = commuter_trajectories(net, 200, seed=7)
>>> problem = TOPSProblem(net, trajs)
>>> result = problem.solve(TOPSQuery(k=5, tau_km=1.0))
>>> index = problem.build_netclus_index(tau_min_km=0.4, tau_max_km=4.0)
>>> fast = index.query(TOPSQuery(k=5, tau_km=1.0))

Persist & serve
---------------
>>> from repro import PlacementService, QuerySpec, save_index, load_index
>>> save_index(index, "city.ncx")                        # doctest: +SKIP
>>> service = PlacementService.from_path("city.ncx")     # doctest: +SKIP
>>> results = service.batch_query(                       # doctest: +SKIP
...     [QuerySpec(k=5, tau_km=1.0), QuerySpec(k=10, tau_km=1.0)]
... )
"""

from repro.core.problem import TOPSProblem
from repro.core.query import TOPSQuery, TOPSResult
from repro.core.preference import (
    BinaryPreference,
    LinearPreference,
    ExponentialPreference,
    ConvexProbabilityPreference,
    InconveniencePreference,
)
from repro.core.distances import DistanceOracle
from repro.core.coverage import CoverageIndex, SparseCoverageIndex
from repro.core.greedy import IncGreedy, LazyGreedy
from repro.core.fm_greedy import FMGreedy
from repro.core.optimal import OptimalSolver
from repro.core.netclus import NetClusIndex
from repro.network.graph import RoadNetwork
from repro.service import PlacementService, QuerySpec, load_index, save_index
from repro.trajectory.model import Trajectory, TrajectoryDataset

__version__ = "1.2.0"

__all__ = [
    "TOPSProblem",
    "TOPSQuery",
    "TOPSResult",
    "BinaryPreference",
    "LinearPreference",
    "ExponentialPreference",
    "ConvexProbabilityPreference",
    "InconveniencePreference",
    "DistanceOracle",
    "CoverageIndex",
    "SparseCoverageIndex",
    "IncGreedy",
    "LazyGreedy",
    "FMGreedy",
    "OptimalSolver",
    "NetClusIndex",
    "PlacementService",
    "QuerySpec",
    "save_index",
    "load_index",
    "RoadNetwork",
    "Trajectory",
    "TrajectoryDataset",
    "__version__",
]
