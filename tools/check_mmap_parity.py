"""CI gate: v4 mmap loads must answer byte-identically to v3 loads and fresh builds.

Builds the Beijing-like workload once, saves it in both writable formats
(v3 compressed ``.npz``, v4 packed mmap blob), reloads each, and runs the
same query battery against all three indexes — fresh / v3-loaded /
v4-loaded — byte-comparing selections and per-trajectory utilities
(``float64`` buffers, not approximate sums) across four scenarios:

* **plain** — sparse-engine queries over several (k, τ);
* **shards=4** — the same battery with the gain evaluation sharded;
* **warm covcache** — a second copy saved *with* persisted coverage
  parts, so the loaded indexes answer through the zero-copy part path;
* **post-update** — the same :class:`UpdateBatch` applied to all three
  (exercising the v4 copy-on-write mutation path), then re-queried.

Exits non-zero on any divergence.  Run from the repository root::

    python tools/check_mmap_parity.py [--scale tiny|small|medium]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.netclus import NetClusIndex, UpdateBatch  # noqa: E402
from repro.core.query import TOPSQuery  # noqa: E402
from repro.datasets import beijing_like  # noqa: E402
from repro.service.serialization import load_index, save_index  # noqa: E402

#: the query battery: several (k, τ) pairs spanning the instance ladder
QUERIES = ((5, 0.6), (3, 1.2), (8, 2.4))


def _probe(index: NetClusIndex, shards: int | None = None) -> list[tuple]:
    """Selections + exact utility bytes for the whole query battery."""
    out = []
    for k, tau_km in QUERIES:
        kwargs = {} if shards is None else {"shards": shards}
        result = index.query(TOPSQuery(k=k, tau_km=tau_km), engine="sparse", **kwargs)
        utilities = np.asarray(result.per_trajectory_utility, dtype=np.float64)
        out.append((tuple(result.sites), utilities.tobytes()))
    return out


def _compare(label: str, fresh: list, v3: list, v4: list) -> bool:
    if fresh == v3 == v4:
        print(f"{label:<16}: {len(QUERIES)} queries, selections + utilities identical")
        return True
    for position, (k, tau_km) in enumerate(QUERIES):
        if not (fresh[position] == v3[position] == v4[position]):
            print(f"FAIL [{label}]: divergence at k={k} tau_km={tau_km}")
            print(f"  fresh sites: {fresh[position][0]}")
            print(f"  v3 sites   : {v3[position][0]}")
            print(f"  v4 sites   : {v4[position][0]}")
    return False


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--scale", default="tiny", choices=["tiny", "small", "medium"])
    args = parser.parse_args(argv)

    bundle = beijing_like(scale=args.scale, seed=42)
    print(f"Building {bundle.name} fresh...")
    fresh = bundle.problem().build_netclus_index(
        gamma=0.75, tau_min_km=0.4, tau_max_km=4.0
    )

    ok = True
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        v3 = load_index(save_index(fresh, root / "plain_v3", format_version=3))
        v4 = load_index(save_index(fresh, root / "plain_v4"))

        ok &= _compare("plain", _probe(fresh), _probe(v3), _probe(v4))
        ok &= _compare(
            "shards=4",
            _probe(fresh, shards=4),
            _probe(v3, shards=4),
            _probe(v4, shards=4),
        )

        # a second copy saved with persisted coverage parts: warm every
        # battery τ so the loaded indexes answer through the part path
        warm = bundle.problem().build_netclus_index(
            gamma=0.75, tau_min_km=0.4, tau_max_km=4.0
        )
        warm.enable_coverage_cache()
        _probe(warm)
        warm_v3 = load_index(save_index(warm, root / "warm_v3", format_version=3))
        warm_v4 = load_index(save_index(warm, root / "warm_v4"))
        ok &= _compare("warm covcache", _probe(warm), _probe(warm_v3), _probe(warm_v4))

        # same dynamic updates applied to all three (v4 copies-on-write),
        # then the battery re-run
        batch = UpdateBatch(
            remove_sites=tuple(sorted(fresh.sites)[:2]),
            remove_trajectories=tuple(fresh.trajectory_ids[:5]),
        )
        for index in (fresh, v3, v4):
            index.apply_updates(batch)
        ok &= _compare("post-update", _probe(fresh), _probe(v3), _probe(v4))

    if not ok:
        return 1
    print("OK: v4 mmap loads are query-identical to v3 loads and fresh builds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
