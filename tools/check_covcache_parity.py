"""CI gate: the incremental coverage cache must answer byte-identically cold.

Builds the NetClus index for the small Beijing-like workload once, enables
the coverage cache, warms a mixed spec batch, then drives a seeded stream
of ~50 mixed delta ops (add/remove trajectory batches, add/remove site
batches) through :meth:`PlacementService.apply_updates`.  After every delta
the warm service — whose cached coverage parts are *patched*, never
rebuilt — is byte-compared against a cache-free service on a deep copy of
the same index:

* the selected site tuples must be identical, element for element;
* the per-trajectory utility vectors must be byte-identical
  (``np.ndarray.tobytes`` comparison — not approximate equality);
* the warm side must report exactly zero coverage builds after warm-up;
* the on-disk round trip (save with parts → load → query) must answer the
  final state byte-identically too.

Exits non-zero on any divergence.  Run from the repository root::

    python tools/check_covcache_parity.py [--scale tiny|small|medium] [--ops 50]
"""

from __future__ import annotations

import argparse
import copy
import shutil
import sys
import tempfile
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.netclus import UpdateBatch  # noqa: E402
from repro.datasets import beijing_like  # noqa: E402
from repro.service.placement import PlacementService  # noqa: E402
from repro.service.serialization import load_index, save_index  # noqa: E402
from repro.service.specs import QuerySpec  # noqa: E402


def _spec_batch() -> list[QuerySpec]:
    """Specs spanning several (τ, ψ) cache keys plus the selection rules."""
    return [
        QuerySpec(k=3, tau_km=0.8),
        QuerySpec(k=8, tau_km=0.8),
        QuerySpec(k=5, tau_km=1.6),
        QuerySpec(k=5, tau_km=0.8, preference="linear"),
        QuerySpec(k=5, tau_km=1.6, preference="exponential"),
        QuerySpec(k=4, tau_km=0.8, capacity=15),
        QuerySpec(k=1, tau_km=0.8, budget=5.0),
        QuerySpec(k=3, tau_km=1.6, existing_sites=(0, 5)),
    ]


def _delta_stream(rng, index, pool, num_ops):
    """Yield ``num_ops`` update batches against the evolving index state."""
    pool = list(pool)
    removed_sites: list[int] = []
    for _ in range(num_ops):
        kind = int(rng.integers(0, 4))
        if kind == 0 and len(pool) >= 2:
            take = int(rng.integers(1, 4))
            batch = UpdateBatch(add_trajectories=pool[:take])
            del pool[:take]
        elif kind == 1 and index.num_trajectories > 25:
            ids = list(index.trajectory_ids)
            picks = rng.choice(len(ids), size=int(rng.integers(1, 4)), replace=False)
            batch = UpdateBatch(
                remove_trajectories=[ids[int(p)] for p in sorted(picks)]
            )
        elif kind == 2 and removed_sites:
            batch = UpdateBatch(add_sites=list(removed_sites))
            removed_sites.clear()
        elif len(index.sites) > 12:
            sites = sorted(index.sites)
            picks = rng.choice(len(sites), size=int(rng.integers(1, 3)), replace=False)
            victims = [sites[int(p)] for p in sorted(picks)]
            removed_sites.extend(victims)
            batch = UpdateBatch(remove_sites=victims)
        else:
            continue
        yield batch


def _compare(specs, warm_results, cold_results, step, failures):
    for spec, got, want in zip(specs, warm_results, cold_results):
        label = f"step={step} spec={spec.to_dict()}"
        if got.sites != want.sites:
            print(f"FAIL [{label}]: sites {got.sites} != {want.sites}")
            failures.append(label)
            continue
        want_bytes = np.asarray(want.per_trajectory_utility).tobytes()
        got_bytes = np.asarray(got.per_trajectory_utility).tobytes()
        if got_bytes != want_bytes:
            print(f"FAIL [{label}]: per-trajectory utilities diverge")
            failures.append(label)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--scale", default="small", choices=["tiny", "small", "medium"])
    parser.add_argument("--ops", type=int, default=50)
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--engine", default="sparse", choices=["dense", "sparse"])
    args = parser.parse_args(argv)

    bundle = beijing_like(scale=args.scale, seed=42)
    problem = bundle.problem()
    print(f"Building NetClus index for {bundle.name}...")
    index = problem.build_netclus_index(gamma=0.75, tau_min_km=0.4, tau_max_km=8.0)
    # a held-out trajectory pool for additions, ids above the live range
    from repro.trajectory.generators import commuter_trajectories
    from repro.trajectory.model import Trajectory

    extra = commuter_trajectories(problem.network, 30, seed=777)
    next_id = max(index.trajectory_ids) + 1
    pool = [
        Trajectory.from_nodes(next_id + i, list(t.nodes), problem.network)
        for i, t in enumerate(extra)
    ]

    specs = _spec_batch()
    warm = PlacementService(index, engine=args.engine, coverage_cache=True)
    warm.batch_query(specs, use_cache=False)  # warm-up: the only cold builds
    builds_after_warmup = warm.stats.coverage_builds
    print(
        f"warm-up: {builds_after_warmup} coverage builds over "
        f"{len(warm.coverage_cache.describe_parts())} (tau, psi) parts"
    )

    rng = np.random.default_rng(args.seed)
    failures: list[str] = []
    steps = 0
    for batch in _delta_stream(rng, index, pool, args.ops):
        warm.apply_updates(batch)
        steps += 1
        warm_results = warm.batch_query(specs, use_cache=False)
        cold_index = copy.deepcopy(index)
        cold_index.coverage_cache = None
        cold = PlacementService(cold_index, engine=args.engine)
        cold_results = cold.batch_query(specs, use_cache=False)
        _compare(specs, warm_results, cold_results, steps, failures)

    if warm.stats.coverage_builds != builds_after_warmup:
        print(
            f"FAIL: warm service performed "
            f"{warm.stats.coverage_builds - builds_after_warmup} coverage "
            "builds after warm-up (expected exactly zero)"
        )
        failures.append("coverage-builds")
    cache_stats = warm.coverage_cache.stats()
    print(
        f"{steps} deltas applied: {cache_stats['patches']} part patches, "
        f"{cache_stats['invalidations']} invalidations, "
        f"{warm.stats.coverage_builds - builds_after_warmup} post-warm-up builds"
    )

    # on-disk round trip: save with parts, load fresh, byte-compare again
    workdir = Path(tempfile.mkdtemp(prefix="covcache-parity-"))
    try:
        path = save_index(index, workdir / "warm.ncx")
        reloaded = PlacementService(load_index(path), engine=args.engine)
        disk_results = reloaded.batch_query(specs, use_cache=False)
        cold_index = copy.deepcopy(index)
        cold_index.coverage_cache = None
        cold = PlacementService(cold_index, engine=args.engine)
        _compare(
            specs,
            disk_results,
            cold.batch_query(specs, use_cache=False),
            "disk-round-trip",
            failures,
        )
        if reloaded.stats.coverage_builds != 0:
            print(
                f"FAIL: reloaded index performed "
                f"{reloaded.stats.coverage_builds} coverage builds "
                "(expected zero — parts were persisted)"
            )
            failures.append("disk-coverage-builds")
        else:
            print("disk round trip: 0 coverage builds, answers byte-identical")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    if failures:
        print(f"FAIL: {len(failures)} divergent result(s)")
        return 1
    print(
        f"OK: warm patched coverage is byte-identical to cold rebuilds across "
        f"{steps} deltas x {len(specs)} specs (engine={args.engine}), "
        "on disk and in memory"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
