"""Documentation checks: markdown links resolve, Python snippets parse.

Run from the repository root::

    python tools/check_docs.py

Two checks over every tracked markdown file (README.md, docs/, examples/):

1. **Relative links** — every ``[text](target)`` pointing at a local file or
   directory must exist (anchors and external ``http(s)``/``mailto`` links
   are skipped).
2. **Python snippets** — every fenced ```` ```python ```` block must be
   valid Python (``compile()``); blocks containing doctest/ellipsis
   placeholders are normalised first.

Exits non-zero with a per-finding listing on failure, so it slots straight
into CI.  No third-party dependencies.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

MARKDOWN_FILES = sorted(
    [
        ROOT / "README.md",
        *(ROOT / "docs").glob("*.md"),
        *(ROOT / "examples").glob("*.md"),
    ]
)

LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_PATTERN = re.compile(r"```python\n(.*?)```", re.DOTALL)


def check_links(path: Path) -> list[str]:
    """Return one error per relative link that does not resolve."""
    errors: list[str] = []
    for match in LINK_PATTERN.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(ROOT)}: broken link -> {target}")
    return errors


def check_python_fences(path: Path) -> list[str]:
    """Return one error per ```python fence that fails to compile."""
    errors: list[str] = []
    for number, match in enumerate(FENCE_PATTERN.finditer(path.read_text()), start=1):
        code = match.group(1)
        # normalise doctest-style fragments so real snippets stay checkable
        code = "\n".join(
            line for line in code.splitlines() if not line.strip().startswith(">>>")
        )
        code = code.replace("...", "pass_placeholder()") if "..." in code else code
        try:
            compile(code, f"{path.name}:snippet{number}", "exec")
        except SyntaxError as exc:
            errors.append(
                f"{path.relative_to(ROOT)}: python snippet #{number} does not "
                f"parse: {exc.msg} (line {exc.lineno})"
            )
    return errors


def main() -> int:
    errors: list[str] = []
    for path in MARKDOWN_FILES:
        errors.extend(check_links(path))
        errors.extend(check_python_fences(path))
    if errors:
        print(f"{len(errors)} documentation problem(s):")
        for error in errors:
            print(f"  {error}")
        return 1
    snippet_count = sum(
        len(FENCE_PATTERN.findall(p.read_text())) for p in MARKDOWN_FILES
    )
    print(
        f"OK: {len(MARKDOWN_FILES)} markdown files, all relative links resolve, "
        f"{snippet_count} python snippets parse"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
