"""CI gate: a parallel build must serialize byte-identically to a sequential one.

Builds the NetClus index for the small Beijing-like workload twice —
``workers=1`` (the exact sequential path) and ``workers=2`` (the
multiprocessing fan-out) — and byte-compares the serialized payloads:

* every payload array ``save_index`` writes is compared byte for byte
  (via the canonical :func:`repro.service.serialization.payload_digest`,
  with the per-instance ``build_seconds`` timing slots zeroed — the one
  entry that legitimately differs between two builds of the same data);
* both indexes are additionally saved to disk and their ``payload.bin``
  blob entries re-read through the manifest offset table and compared, so
  the check covers the actual on-disk writer, not just the in-memory
  flattening.

Exits non-zero on any divergence.  Run from the repository root::

    python tools/check_build_parity.py [--scale tiny|small|medium]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.netclus import NetClusIndex  # noqa: E402
from repro.datasets import beijing_like  # noqa: E402
from repro.service.serialization import (  # noqa: E402
    META_BUILD_SECONDS_SLOT,
    PAYLOAD_BLOB_FILE,
    load_manifest,
    payload_digest,
    save_index,
)


def _blob_arrays(directory: Path) -> dict[str, np.ndarray]:
    """Writable copies of every v4 payload array, via the offset table."""
    manifest = load_manifest(directory)
    blob = np.fromfile(directory / PAYLOAD_BLOB_FILE, dtype=np.uint8)
    return {
        key: blob[entry["offset"] : entry["offset"] + entry["nbytes"]]
        .view(np.dtype(str(entry["dtype"])))
        .reshape(tuple(entry["shape"]))
        .copy()
        for key, entry in manifest["payload_arrays"].items()
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--scale", default="small", choices=["tiny", "small", "medium"])
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    bundle = beijing_like(scale=args.scale, seed=42)
    print(f"Building {bundle.name} with workers=1 and workers={args.workers}...")
    kwargs = dict(gamma=0.75, tau_min_km=0.4, tau_max_km=8.0)
    sequential = NetClusIndex.build(
        bundle.network, bundle.trajectories, bundle.sites, workers=1, **kwargs
    )
    parallel = NetClusIndex.build(
        bundle.network,
        bundle.trajectories,
        bundle.sites,
        workers=args.workers,
        **kwargs,
    )

    digest_sequential = payload_digest(sequential, include_timings=False)
    digest_parallel = payload_digest(parallel, include_timings=False)
    if digest_sequential != digest_parallel:
        print(
            f"FAIL: payload digests diverge "
            f"({digest_sequential[:16]} != {digest_parallel[:16]})"
        )
        return 1
    print(f"payload digest   : {digest_sequential[:16]}… (identical)")

    # second opinion through the real on-disk writer (format v4 packed blob)
    with tempfile.TemporaryDirectory() as tmp:
        sequential_dir = save_index(sequential, Path(tmp) / "sequential")
        parallel_dir = save_index(parallel, Path(tmp) / "parallel")
        left = _blob_arrays(sequential_dir)
        right = _blob_arrays(parallel_dir)
        if sorted(left) != sorted(right):
            print("FAIL: payload key sets differ")
            return 1
        for key in left:
            a, b = left[key], right[key]
            if key.endswith("_meta"):
                # build_seconds is timing, not state
                a[META_BUILD_SECONDS_SLOT] = b[META_BUILD_SECONDS_SLOT] = 0.0
            if a.tobytes() != b.tobytes():
                print(f"FAIL: payload entry {key!r} differs")
                return 1
    print(f"payload.bin      : {len(sequential.instances)} instances, all entries equal")
    print("OK: parallel build is serialization-identical to the sequential path")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
