"""CI gate: the bitset engine must answer byte-identically to sparse/dense.

Builds the NetClus index for the small Beijing-like workload once, then
compares three configurations against the ``engine="sparse"`` baseline:

* ``engine="bitset"`` on a binary-ψ spec batch (k-sweeps, two τ,
  capacity, budget, existing services — every selection rule the bitset
  kernels serve; TOPS3 min-inconvenience is excluded, it is dense-only);
* ``engine="bitset"`` with ``shards=4`` and a worker pool;
* ``engine="auto"`` on a *mixed*-ψ batch — binary specs must resolve to
  the bitset engine, graded specs to sparse, with identical answers.

The sparse baseline runs first, so the bitset and auto services exercise
the warm coverage-cache path (bitset views materialised from cached
entries).  Every result is byte-compared: selected site tuples element
for element and per-trajectory utility vectors via
``np.ndarray.tobytes``.  Exits non-zero on any divergence.  Run from the
repository root::

    python tools/check_bitset_parity.py [--scale tiny|small|medium] [--shards 4]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets import beijing_like  # noqa: E402
from repro.service.placement import PlacementService  # noqa: E402
from repro.service.specs import QuerySpec  # noqa: E402


def _binary_specs() -> list[QuerySpec]:
    """Binary-ψ specs over every selection rule the bitset engine serves."""
    return [
        QuerySpec(k=3, tau_km=0.8),
        QuerySpec(k=8, tau_km=0.8),
        QuerySpec(k=5, tau_km=1.6),
        QuerySpec(k=4, tau_km=0.8, capacity=15),
        QuerySpec(k=1, tau_km=0.8, budget=5.0),
        QuerySpec(k=3, tau_km=1.6, existing_sites=(0, 5)),
    ]


def _mixed_specs() -> list[QuerySpec]:
    """Binary and graded ψ together: the ``auto`` resolution workload."""
    return _binary_specs() + [
        QuerySpec(k=5, tau_km=0.8, preference="linear"),
        QuerySpec(k=5, tau_km=0.8, preference="exponential"),
    ]


def _compare(baseline, results, specs, label: str) -> int:
    failures = 0
    for spec, want, got in zip(specs, baseline, results):
        spec_label = f"{label} spec={spec.to_dict()}"
        if got.sites != want.sites:
            print(f"FAIL [{spec_label}]: sites {got.sites} != {want.sites}")
            failures += 1
            continue
        want_bytes = np.asarray(want.per_trajectory_utility).tobytes()
        got_bytes = np.asarray(got.per_trajectory_utility).tobytes()
        if got_bytes != want_bytes:
            print(f"FAIL [{spec_label}]: per-trajectory utilities diverge")
            failures += 1
    if not failures:
        print(f"{label}: {len(specs)} specs byte-identical to the sparse baseline")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--scale", default="small", choices=["tiny", "small", "medium"])
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--query-workers", default="auto")
    args = parser.parse_args(argv)

    bundle = beijing_like(scale=args.scale, seed=42)
    problem = bundle.problem()
    print(f"Building NetClus index for {bundle.name}...")
    index = problem.build_netclus_index(gamma=0.75, tau_min_km=0.4, tau_max_km=8.0)
    binary_specs = _binary_specs()
    mixed_specs = _mixed_specs()

    baseline_service = PlacementService(index, engine="sparse")
    binary_baseline = baseline_service.batch_query(binary_specs, use_cache=False)
    mixed_baseline = baseline_service.batch_query(mixed_specs, use_cache=False)

    failures = 0
    bitset_service = PlacementService(index, engine="bitset")
    failures += _compare(
        binary_baseline,
        bitset_service.batch_query(binary_specs, use_cache=False),
        binary_specs,
        "engine=bitset",
    )

    sharded_service = PlacementService(
        index,
        engine="bitset",
        shards=args.shards,
        query_workers=args.query_workers,
    )
    failures += _compare(
        binary_baseline,
        sharded_service.batch_query(binary_specs, use_cache=False),
        binary_specs,
        f"engine=bitset shards={args.shards}",
    )
    sharded_service.close()

    auto_service = PlacementService(index, engine="auto")
    failures += _compare(
        mixed_baseline,
        auto_service.batch_query(mixed_specs, use_cache=False),
        mixed_specs,
        "engine=auto (mixed ψ)",
    )

    if failures:
        print(f"FAIL: {failures} divergent result(s)")
        return 1
    print(
        "OK: bitset and auto answers are byte-identical to the sparse "
        f"baseline (plain, shards={args.shards}, warm coverage cache)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
