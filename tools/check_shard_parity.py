"""CI gate: the sharded query path must answer byte-identically to shards=1.

Builds the NetClus index for the small Beijing-like workload once, then
answers a mixed spec batch — plain k-sweeps, a non-binary ψ, capacity,
budget, existing services — through two :class:`PlacementService`
configurations: ``shards=1`` (the unsharded baseline) and ``shards=4``
with a worker pool.  Every result is byte-compared:

* the selected site tuples must be identical, element for element;
* the per-trajectory utility vectors must be byte-identical
  (``np.ndarray.tobytes`` comparison — not approximate equality);
* both engines (``sparse`` and ``dense``) are checked.

Exits non-zero on any divergence.  Run from the repository root::

    python tools/check_shard_parity.py [--scale tiny|small|medium] [--shards 4]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets import beijing_like  # noqa: E402
from repro.service.placement import PlacementService  # noqa: E402
from repro.service.specs import QuerySpec  # noqa: E402


def _spec_batch() -> list[QuerySpec]:
    """A batch covering every selection rule the service implements."""
    return [
        QuerySpec(k=3, tau_km=0.8),
        QuerySpec(k=8, tau_km=0.8),
        QuerySpec(k=5, tau_km=1.6),
        QuerySpec(k=5, tau_km=0.8, preference="linear"),
        QuerySpec(k=5, tau_km=0.8, preference="exponential"),
        QuerySpec(k=4, tau_km=0.8, capacity=15),
        QuerySpec(k=1, tau_km=0.8, budget=5.0),
        QuerySpec(k=3, tau_km=1.6, existing_sites=(0, 5)),
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--scale", default="small", choices=["tiny", "small", "medium"])
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--query-workers", default="auto")
    args = parser.parse_args(argv)

    bundle = beijing_like(scale=args.scale, seed=42)
    problem = bundle.problem()
    print(f"Building NetClus index for {bundle.name}...")
    index = problem.build_netclus_index(gamma=0.75, tau_min_km=0.4, tau_max_km=8.0)
    specs = _spec_batch()

    failures = 0
    for engine in ("sparse", "dense"):
        baseline_service = PlacementService(index, engine=engine)
        sharded_service = PlacementService(
            index,
            engine=engine,
            shards=args.shards,
            query_workers=args.query_workers,
        )
        baseline = baseline_service.batch_query(specs, use_cache=False)
        sharded = sharded_service.batch_query(specs, use_cache=False)
        sharded_service.close()
        engine_failures_before = failures
        for spec, want, got in zip(specs, baseline, sharded):
            label = f"engine={engine} spec={spec.to_dict()}"
            if got.sites != want.sites:
                print(f"FAIL [{label}]: sites {got.sites} != {want.sites}")
                failures += 1
                continue
            want_bytes = np.asarray(want.per_trajectory_utility).tobytes()
            got_bytes = np.asarray(got.per_trajectory_utility).tobytes()
            if got_bytes != want_bytes:
                print(f"FAIL [{label}]: per-trajectory utilities diverge")
                failures += 1
                continue
            if got.metadata.get("shards") != args.shards:
                print(
                    f"FAIL [{label}]: result reports shards="
                    f"{got.metadata.get('shards')}, expected {args.shards}"
                )
                failures += 1
        if failures == engine_failures_before:
            print(
                f"engine={engine:<6}: {len(specs)} specs byte-identical at "
                f"shards={args.shards} (x{sharded_service.query_workers} workers)"
            )
    if failures:
        print(f"FAIL: {failures} divergent result(s)")
        return 1
    print(
        f"OK: shards={args.shards} answers are byte-identical to the "
        "unsharded path on both engines"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
