"""Benchmark E11 — Fig. 11: effect of city geometries (star / mesh / polycentric)."""

from __future__ import annotations

from repro.experiments.figures import fig11_city_geometries
from repro.experiments.reporting import print_table


def test_fig11_rows(benchmark):
    rows = benchmark.pedantic(
        lambda: fig11_city_geometries.run(k=5, tau_km=0.8, num_trajectories=150, seed=7),
        rounds=1,
        iterations=1,
    )
    print()
    print_table(rows, title="Fig. 11 — effect of city geometries")
    by_city = {row["city"]: row for row in rows}
    assert set(by_city) == {"NYK", "ATL", "BNG"}
    # the paper's shape: the polycentric city (Bangalore) yields the highest
    # utility, the mesh city (Atlanta) the lowest
    assert by_city["BNG"]["incg_utility_pct"] >= by_city["ATL"]["incg_utility_pct"]
