"""Benchmark E11 — Fig. 11: effect of city geometries (star / mesh / polycentric)."""

from __future__ import annotations

import numpy as np

from repro.datasets import atlanta_like, bangalore_like, new_york_like
from repro.experiments.figures import fig11_city_geometries
from repro.experiments.reporting import print_table
from repro.service import IndexFarm, PlacementService, QuerySpec, save_index
from repro.service.serialization import load_manifest


def test_fig11_rows(benchmark):
    rows = benchmark.pedantic(
        lambda: fig11_city_geometries.run(k=5, tau_km=0.8, num_trajectories=150, seed=7),
        rounds=1,
        iterations=1,
    )
    print()
    print_table(rows, title="Fig. 11 — effect of city geometries")
    by_city = {row["city"]: row for row in rows}
    assert set(by_city) == {"NYK", "ATL", "BNG"}
    # the paper's shape: the polycentric city (Bangalore) yields the highest
    # utility, the mesh city (Atlanta) the lowest
    assert by_city["BNG"]["incg_utility_pct"] >= by_city["ATL"]["incg_utility_pct"]


def test_fig11_farm_panel(benchmark, tmp_path):
    """Panel 11d: the multi-city batch served by one memory-budgeted farm.

    All three Fig. 11 cities live in a single :class:`IndexFarm` whose
    budget holds roughly one index at a time, so the round-robin batch
    forces evictions between cities — and every answer must still match a
    dedicated per-city :class:`PlacementService` byte for byte.
    """
    cities = {
        "NYK": new_york_like(num_trajectories=150, seed=7),
        "ATL": atlanta_like(num_trajectories=150, seed=7),
        "BNG": bangalore_like(num_trajectories=150, seed=7),
    }
    directories = {}
    for name, bundle in cities.items():
        index = bundle.problem().build_netclus_index(
            gamma=0.75, tau_min_km=0.4, tau_max_km=4.0
        )
        directories[name] = save_index(index, tmp_path / f"{name}.ncx")
    budget = int(
        1.5 * max(load_manifest(d)["storage_bytes"] for d in directories.values())
    )
    specs = [QuerySpec(k=5, tau_km=0.8), QuerySpec(k=3, tau_km=1.6)]

    def farm_batch():
        farm = IndexFarm(memory_budget_bytes=budget)
        for name, directory in directories.items():
            farm.add_tenant(name, directory)
        answers = {
            name: farm.batch_query(name, specs, use_cache=False)
            for name in directories
        }
        evictions = farm.evictions_total
        farm.close()
        return answers, evictions

    answers, evictions = benchmark.pedantic(farm_batch, rounds=1, iterations=1)
    # the budget holds ~1.5 indexes, so serving three cities must evict
    assert evictions >= 1

    rows = []
    for name, directory in directories.items():
        service = PlacementService.from_path(directory)
        direct = service.batch_query(specs, use_cache=False)
        for spec, farm_result, direct_result in zip(specs, answers[name], direct):
            assert farm_result.sites == direct_result.sites
            farm_util = np.asarray(farm_result.per_trajectory_utility, dtype=np.float64)
            direct_util = np.asarray(
                direct_result.per_trajectory_utility, dtype=np.float64
            )
            assert farm_util.tobytes() == direct_util.tobytes()
            rows.append(
                {
                    "city": name,
                    "k": spec.k,
                    "tau_km": spec.tau_km,
                    "utility": round(farm_result.utility, 3),
                    "sites": len(farm_result.sites),
                }
            )
        service.close()
    print()
    print_table(rows, title="Fig. 11d — multi-city batch through a budgeted farm")
    assert evictions >= 1
