"""Benchmark — sparse CELF engine vs the dense recompute greedy.

Dense Inc-Greedy (``update_strategy="recompute"``) performs ``k`` full passes
over the ``(m, n)`` score matrix.  The sparse engine builds a
:class:`SparseCoverageIndex` (CSR/CSC over only the covered pairs) and runs
the CELF lazy greedy, which re-evaluates a small fraction of the marginal
gains.  Both return identical selections; this module measures the speedup
and the number of evaluated gains on the scalability workloads of Fig. 10.

``test_sparse_engine_smoke`` is the fast check exercised by the CI smoke job
(``pytest benchmarks -q -k smoke``); the speedup assertion runs on the
largest (``medium``-scale) workload.
"""

from __future__ import annotations

import time

from repro.core.coverage import CoverageIndex, SparseCoverageIndex
from repro.core.greedy import IncGreedy, LazyGreedy
from repro.core.query import TOPSQuery
from repro.datasets import beijing_like
from repro.experiments.reporting import print_table


def _dense_select(detours, query):
    coverage = CoverageIndex(detours, query.tau_km, query.preference)
    return IncGreedy(coverage, update_strategy="recompute").select(query.k)


def _sparse_select(detours, query):
    coverage = SparseCoverageIndex(detours, query.tau_km, query.preference)
    greedy = LazyGreedy(coverage)
    selection = greedy.select(query.k)
    return selection, greedy.last_num_evaluations, coverage


def _best_of(fn, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _compare_engines(bundle, query, rounds=3):
    """Row of dense-vs-sparse timings for one workload (selections verified)."""
    problem = bundle.problem()
    detours = problem.detour_matrix()
    dense_seconds, dense_selection = _best_of(lambda: _dense_select(detours, query), rounds)
    sparse_seconds, (sparse_selection, evaluations, coverage) = _best_of(
        lambda: _sparse_select(detours, query), rounds
    )
    assert dense_selection[0] == sparse_selection[0], "engines must select identically"
    return {
        "workload": bundle.name,
        "num_trajectories": coverage.num_trajectories,
        "num_sites": coverage.num_sites,
        "density_pct": 100.0 * coverage.density,
        "dense_ms": 1000.0 * dense_seconds,
        "sparse_ms": 1000.0 * sparse_seconds,
        "speedup": dense_seconds / sparse_seconds,
        "evaluated_gains": evaluations,
        "eager_gains": query.k * coverage.num_sites,
    }


def test_sparse_engine_smoke(tiny_bundle, default_query):
    """Fast CI check: engines agree and the lazy greedy skips evaluations."""
    row = _compare_engines(tiny_bundle, default_query, rounds=1)
    print()
    print_table([row], title="Sparse engine — smoke (tiny workload)")
    assert row["evaluated_gains"] < row["eager_gains"]


def test_sparse_engine_speedup_scalability(benchmark):
    """≥ 2× over dense recompute on the largest scalability workload."""
    bundle = beijing_like(scale="medium", seed=42)
    query = TOPSQuery(k=10, tau_km=0.8)
    row = benchmark.pedantic(
        lambda: _compare_engines(bundle, query, rounds=3),
        rounds=1,
        iterations=1,
    )
    print()
    print_table([row], title="Sparse engine — largest scalability workload")
    assert row["speedup"] >= 2.0


def test_sparse_engine_speedup_varying_tau(small_context):
    """The sparser the coverage (small τ), the larger the win — report the sweep."""
    problem = small_context.problem
    detours = problem.detour_matrix()
    rows = []
    for tau in (0.4, 0.8, 1.6):
        query = TOPSQuery(k=10, tau_km=tau)
        dense_seconds, dense_selection = _best_of(lambda: _dense_select(detours, query))
        sparse_seconds, (sparse_selection, evaluations, coverage) = _best_of(
            lambda: _sparse_select(detours, query)
        )
        assert dense_selection[0] == sparse_selection[0]
        rows.append(
            {
                "tau_km": tau,
                "density_pct": 100.0 * coverage.density,
                "dense_ms": 1000.0 * dense_seconds,
                "sparse_ms": 1000.0 * sparse_seconds,
                "speedup": dense_seconds / sparse_seconds,
                "evaluated_gains": evaluations,
                "eager_gains": query.k * coverage.num_sites,
            }
        )
    print()
    print_table(rows, title="Sparse engine — speedup vs τ (small workload)")
