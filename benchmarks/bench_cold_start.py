"""Benchmark — cold-start time-to-first-query: v3 decompress vs v4 mmap.

The format-v4 payload (one aligned packed blob, mmap-loaded, instances
rebuilt lazily per τ-rung) exists to make cold starts cheap: a v3 load
decompresses the whole ``payload.npz``, hashes it and rebuilds every
instance before the first query can run, while a v4 load touches only the
manifest and fingerprints and pays for exactly the rungs the first query
resolves.  This benchmark makes that claim a number:

* **time-to-first-query (ttfq)** — wall-clock from ``load_index`` (or farm
  registration) to the first answered query, measured in a *fresh
  subprocess per trial* so imports, allocator state and page cache warmth
  cannot leak between formats;
* **peak RSS** — ``ru_maxrss`` of each subprocess, recording the memory
  advantage of paging arrays in on demand;
* **parity** — the v3- and v4-loaded selections are compared
  element-for-element in every scenario before any timing is trusted.

Scenarios: each Fig. 11 city (NYK / ATL / BNG) as a single index, and a
four-tenant :class:`~repro.service.farm.IndexFarm` answering one query
per tenant.  Every index is saved with a warm persisted coverage part for
the benchmark query — the production restart scenario the persistent
coverage cache exists for, and the one where the v3 penalty is purest:
v3 still decompresses and rebuilds everything up front, while v4 answers
from the mapped part plus the rung's summary scalars.  The full run
records ``benchmarks/BENCH_cold_start.json`` and asserts the multi-city
ttfq speed-up — one cold farm process serving every Fig. 11 city to its
first answer — is ≥ 5×; ``--smoke`` (the CI configuration) runs a tiny
workload and asserts ≥ 2×.
"""

from __future__ import annotations

import argparse
import json
import statistics
import subprocess
import sys
from pathlib import Path

from repro.core.query import TOPSQuery
from repro.datasets import atlanta_like, bangalore_like, new_york_like
from repro.experiments.reporting import print_table
from repro.service.serialization import save_index

BENCH_JSON = Path(__file__).parent / "BENCH_cold_start.json"

#: multi-city ttfq speed-up the full run must reach (smoke: SMOKE_SPEEDUP)
TARGET_SPEEDUP = 5.0
SMOKE_SPEEDUP = 2.0

#: the paper's default query, answered first thing after every cold load
QUERY_K = 5
QUERY_TAU_KM = 0.8

#: subprocess body: load → first query → report; imports happen before the
#: clock starts so both formats are timed from the same baseline
_CHILD = r"""
import json, resource, sys, time
from repro.core.query import TOPSQuery
from repro.service import IndexFarm, QuerySpec
from repro.service.serialization import load_index

scenario = json.loads(sys.argv[1])
start = time.perf_counter()
if scenario["mode"] == "single":
    index = load_index(scenario["directory"])
    load_s = time.perf_counter() - start
    result = index.query(
        TOPSQuery(k=scenario["k"], tau_km=scenario["tau_km"]), engine="sparse"
    )
    ttfq_s = time.perf_counter() - start
    sites = [list(result.sites)]
else:
    farm = IndexFarm(memory_budget_bytes=scenario.get("memory_budget_bytes"))
    for name in sorted(scenario["tenants"]):
        farm.add_tenant(name, scenario["tenants"][name])
    load_s = time.perf_counter() - start
    sites = []
    for name in sorted(scenario["tenants"]):
        result = farm.query(name, QuerySpec(k=scenario["k"], tau_km=scenario["tau_km"]))
        sites.append(list(result.sites))
    ttfq_s = time.perf_counter() - start
print(json.dumps({
    "load_s": load_s,
    "ttfq_s": ttfq_s,
    "rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "sites": sites,
}))
"""


def _run_child(scenario: dict) -> dict:
    """One cold-start trial in a fresh interpreter; returns its report."""
    src = str(Path(__file__).resolve().parent.parent / "src")
    completed = subprocess.run(
        [sys.executable, "-c", _CHILD, json.dumps(scenario)],
        capture_output=True,
        text=True,
        timeout=600,
        env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
    )
    if completed.returncode != 0:
        raise RuntimeError(f"cold-start child failed:\n{completed.stderr}")
    return json.loads(completed.stdout)


def _measure_scenario(scenario: dict, trials: int) -> dict:
    """Median ttfq/load/RSS over *trials* fresh subprocesses (+1 warm-up).

    The discarded warm-up trial populates the OS page cache, so every
    measured trial (for either format) reads the index from memory —
    the comparison is decompress-and-rebuild vs map-and-rebuild-lazily,
    not disk speed.
    """
    _run_child(scenario)
    reports = [_run_child(scenario) for _ in range(trials)]
    sites = reports[0]["sites"]
    for report in reports[1:]:
        assert report["sites"] == sites, "cold loads disagreed across trials"
    return {
        "ttfq_s": statistics.median(r["ttfq_s"] for r in reports),
        "load_s": statistics.median(r["load_s"] for r in reports),
        "rss_kb": int(statistics.median(r["rss_kb"] for r in reports)),
        "trials": trials,
        "sites": sites,
    }


def _build_city_dirs(root: Path, num_trajectories: int, seed: int) -> dict[str, dict]:
    """Fig. 11 city indexes, each saved in both formats (plus a 4th tenant)."""
    cities = {
        "nyk": new_york_like(num_trajectories=num_trajectories, seed=seed),
        "atl": atlanta_like(num_trajectories=num_trajectories, seed=seed),
        "bng": bangalore_like(num_trajectories=num_trajectories, seed=seed),
        "nyk2": new_york_like(num_trajectories=num_trajectories, seed=seed + 1),
    }
    directories: dict[str, dict] = {}
    for name, bundle in cities.items():
        index = bundle.problem().build_netclus_index(
            gamma=0.75, tau_min_km=0.4, tau_max_km=4.0
        )
        # persist a warm coverage part for the benchmark query — the
        # restart scenario the persistent coverage cache exists for
        index.enable_coverage_cache()
        index.query(TOPSQuery(k=QUERY_K, tau_km=QUERY_TAU_KM), engine="sparse")
        directories[name] = {
            "v4": str(save_index(index, root / f"{name}_v4.ncx")),
            "v3": str(save_index(index, root / f"{name}_v3.ncx", format_version=3)),
        }
    return directories


def _compare_formats(scenarios: dict[str, dict[str, dict]], trials: int) -> dict:
    """Run every scenario under both formats; assert parity; return rows."""
    results: dict = {}
    for label, by_format in scenarios.items():
        v3 = _measure_scenario(by_format["v3"], trials)
        v4 = _measure_scenario(by_format["v4"], trials)
        assert v4["sites"] == v3["sites"], (
            f"{label}: v4 selections diverged from v3 "
            f"({v4['sites']} != {v3['sites']})"
        )
        results[label] = {
            "v3": {k: v3[k] for k in ("ttfq_s", "load_s", "rss_kb")},
            "v4": {k: v4[k] for k in ("ttfq_s", "load_s", "rss_kb")},
            "ttfq_speedup": v3["ttfq_s"] / max(v4["ttfq_s"], 1e-9),
            "rss_ratio": v3["rss_kb"] / max(v4["rss_kb"], 1),
            "parity": True,
        }
    return results


def _measure(num_trajectories: int, trials: int, workdir: Path) -> dict:
    """The full comparison: three single cities + the four-tenant farm."""
    directories = _build_city_dirs(workdir, num_trajectories, seed=7)
    scenarios: dict[str, dict[str, dict]] = {}
    for city in ("nyk", "atl", "bng"):
        scenarios[f"single_{city}"] = {
            fmt: {
                "mode": "single",
                "directory": directories[city][fmt],
                "k": QUERY_K,
                "tau_km": QUERY_TAU_KM,
            }
            for fmt in ("v3", "v4")
        }
    scenarios["farm_4_tenants"] = {
        fmt: {
            "mode": "farm",
            "tenants": {name: directories[name][fmt] for name in directories},
            "k": QUERY_K,
            "tau_km": QUERY_TAU_KM,
        }
        for fmt in ("v3", "v4")
    }
    results = _compare_formats(scenarios, trials)
    single = [results[f"single_{city}"] for city in ("nyk", "atl", "bng")]
    farm = results["farm_4_tenants"]
    return {
        "workload": "fig11-cities",
        "num_trajectories": num_trajectories,
        "query": {"k": QUERY_K, "tau_km": QUERY_TAU_KM},
        "trials": trials,
        "scenarios": {
            label: {k: v for k, v in row.items() if k != "sites"}
            for label, row in results.items()
        },
        "single_city_sum_ttfq_v3_s": sum(row["v3"]["ttfq_s"] for row in single),
        "single_city_sum_ttfq_v4_s": sum(row["v4"]["ttfq_s"] for row in single),
        # the multi-city workload is the farm: one cold process serving
        # every Fig. 11 city, each answering its first query
        "multi_city_ttfq_v3_s": farm["v3"]["ttfq_s"],
        "multi_city_ttfq_v4_s": farm["v4"]["ttfq_s"],
        "multi_city_ttfq_speedup": farm["ttfq_speedup"],
        "target_speedup": TARGET_SPEEDUP,
    }


def _report_rows(record: dict) -> list[dict]:
    rows = []
    for label, row in record["scenarios"].items():
        rows.append(
            {
                "scenario": label,
                "v3_ttfq_ms": round(row["v3"]["ttfq_s"] * 1e3, 1),
                "v4_ttfq_ms": round(row["v4"]["ttfq_s"] * 1e3, 1),
                "speedup": round(row["ttfq_speedup"], 2),
                "v3_rss_mb": round(row["v3"]["rss_kb"] / 1024, 1),
                "v4_rss_mb": round(row["v4"]["rss_kb"] / 1024, 1),
            }
        )
    return rows


def _smoke(tmp_root: Path) -> dict:
    """CI-sized run: one tiny city both ways + a two-tenant farm."""
    from repro.datasets import beijing_like

    bundle = beijing_like(scale="tiny", seed=42)
    index = bundle.problem().build_netclus_index(
        gamma=0.75, tau_min_km=0.4, tau_max_km=4.0
    )
    index.enable_coverage_cache()
    index.query(TOPSQuery(k=QUERY_K, tau_km=QUERY_TAU_KM), engine="sparse")
    dirs = {
        "v4": str(save_index(index, tmp_root / "tiny_v4.ncx")),
        "v3": str(save_index(index, tmp_root / "tiny_v3.ncx", format_version=3)),
    }
    scenarios = {
        "single_tiny": {
            fmt: {
                "mode": "single",
                "directory": dirs[fmt],
                "k": QUERY_K,
                "tau_km": QUERY_TAU_KM,
            }
            for fmt in ("v3", "v4")
        },
        "farm_2_tenants": {
            fmt: {
                "mode": "farm",
                "tenants": {"a": dirs[fmt], "b": dirs[fmt]},
                "k": QUERY_K,
                "tau_km": QUERY_TAU_KM,
            }
            for fmt in ("v3", "v4")
        },
    }
    results = _compare_formats(scenarios, trials=3)
    return {
        "workload": "beijing-tiny (smoke)",
        "scenarios": {
            label: {k: v for k, v in row.items() if k != "sites"}
            for label, row in results.items()
        },
        "smoke_speedup": results["single_tiny"]["ttfq_speedup"],
    }


def test_cold_start_smoke(tmp_path):
    """Fast CI check: v4 parity on cold loads and a ≥ 2× tiny-scale ttfq win."""
    record = _smoke(tmp_path)
    print()
    print_table(_report_rows(record), title="Cold start — tiny smoke")
    for row in record["scenarios"].values():
        assert row["parity"]
    assert record["smoke_speedup"] >= SMOKE_SPEEDUP, record


def build_parser() -> argparse.ArgumentParser:
    """The script-entry CLI (see ``benchmarks/conftest.py``'s registry)."""
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload, parity + a relaxed ≥ 2× speed-up check "
        "(the CI configuration); no JSON is recorded",
    )
    parser.add_argument(
        "--trajectories",
        type=int,
        default=6000,
        help="trajectories per Fig. 11 city in the full run",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=3,
        help="measured cold-start subprocesses per scenario (after 1 warm-up)",
    )
    return parser


def main(argv=None) -> int:
    """Script entry point: ``--smoke`` for the CI-sized run."""
    import tempfile

    args = build_parser().parse_args(argv)
    with tempfile.TemporaryDirectory() as tmp:
        if args.smoke:
            record = _smoke(Path(tmp))
            print_table(_report_rows(record), title="Cold start — tiny smoke")
            assert record["smoke_speedup"] >= SMOKE_SPEEDUP, record
            print(
                f"Cold-start smoke OK: v4 ttfq {record['smoke_speedup']:.1f}x "
                f"faster than v3 (threshold {SMOKE_SPEEDUP:g}x), parity held"
            )
        else:
            record = _measure(args.trajectories, args.trials, Path(tmp))
            print_table(
                _report_rows(record),
                title=f"Cold start — Fig. 11 cities ({args.trajectories} trajectories)",
            )
            BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
            speedup = record["multi_city_ttfq_speedup"]
            print(
                f"Recorded in {BENCH_JSON} "
                f"(multi-city ttfq speedup {speedup:.1f}x, target ≥ {TARGET_SPEEDUP:g}x)"
            )
            assert speedup >= TARGET_SPEEDUP, (
                f"multi-city cold-start speedup {speedup:.2f}x "
                f"below the {TARGET_SPEEDUP:g}x target"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
