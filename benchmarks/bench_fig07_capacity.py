"""Benchmark E8 — Fig. 7b: the TOPS-CAPACITY extension."""

from __future__ import annotations

from repro.core.variants import solve_tops_capacity
from repro.datasets.workloads import site_capacities_normal
from repro.experiments.figures import fig07_cost_capacity
from repro.experiments.reporting import print_table


def test_tops_capacity_query(benchmark, small_context, default_query):
    coverage = small_context.coverage(default_query)
    capacities = site_capacities_normal(
        coverage.num_sites, small_context.num_trajectories, mean_fraction=0.1, seed=13
    )
    result = benchmark.pedantic(
        lambda: solve_tops_capacity(coverage, default_query, capacities),
        rounds=3,
        iterations=1,
    )
    assert len(result.sites) <= default_query.k


def test_fig07_capacity_rows(benchmark, small_context):
    rows = benchmark.pedantic(
        lambda: fig07_cost_capacity.run_capacity(
            small_context, mean_fractions=(0.01, 0.1, 1.0)
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print_table(rows, title="Fig. 7b — TOPS-CAPACITY vs mean site capacity")
    # utility grows with capacity, approaching the unconstrained TOPS value
    assert rows[-1]["incg_utility_pct"] >= rows[0]["incg_utility_pct"] - 1e-9
