"""Benchmark E12 — Fig. 12: effect of trajectory length."""

from __future__ import annotations

from repro.experiments.figures import fig12_traj_length
from repro.experiments.reporting import print_table


def test_fig12_rows(benchmark, tiny_bundle):
    rows = benchmark.pedantic(
        lambda: fig12_traj_length.run(
            length_bands_km=((1.0, 3.0), (3.0, 5.0), (5.0, 8.0)),
            num_per_band=60,
            bundle=tiny_bundle,
            k=5,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print_table(rows, title="Fig. 12 — effect of trajectory length")
    assert len(rows) >= 2
    # longer trajectories are easier to cover: utility is (weakly) increasing
    utilities = [row["incg_utility_pct"] for row in rows]
    assert utilities[-1] >= utilities[0] - 5.0
