"""Benchmark — parallel staged build pipeline vs the sequential offline phase.

:meth:`NetClusIndex.build` runs the staged pipeline of
:mod:`repro.core.build`; ``workers=N`` fans the independent per-instance
clusterings (and their neighbour sweeps) out over a ``multiprocessing``
pool.  The contract is twofold:

* **parity** — a parallel build is serialization-identical to the
  sequential one: every payload array byte-compares equal
  (:func:`repro.service.serialization.payload_digest` with timings
  excluded), asserted here before any timing is reported;
* **speedup** — on the medium scalability workload
  (``beijing_like(scale="medium")``) a parallel build should be ≥ 2×
  faster wall-clock than ``workers=1`` — *given the cores to run on*.
  The worker count defaults to ``min(4, usable CPUs)`` (resolved through
  :func:`repro.utils.parallel.resolve_workers`), so a two-core container
  no longer oversubscribes a four-process pool onto two hyperthreads —
  the configuration that honestly recorded a 0.82× "speedup".  The
  measurement is recorded in ``benchmarks/BENCH_parallel_build.json``
  either way; the assertion engages only when the host offers at least
  four usable CPUs (a starved container cannot express a four-way
  speedup no matter what the code does, and the recorded
  ``parallel_efficiency`` calibration shows why).

``test_parallel_build_smoke`` is the fast CI check (tiny workload,
``workers=2`` parity + pipeline stage sanity); running the module as a
script (``python benchmarks/bench_parallel_build.py [--smoke]``) performs
the same measurements without pytest.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import time
from pathlib import Path

from repro.core.build import STAGES
from repro.core.netclus import NetClusIndex
from repro.datasets import beijing_like
from repro.experiments.reporting import print_table
from repro.experiments.runner import DEFAULT_TAU_RANGE
from repro.service.serialization import payload_digest
from repro.utils.parallel import capped_cpu_workers, resolve_workers, usable_cpu_count

BENCH_JSON = Path(__file__).parent / "BENCH_parallel_build.json"

#: speedup the medium workload must reach with 4 workers on ≥ 4 CPUs
TARGET_SPEEDUP = 2.0


def _default_workers() -> int:
    """The benchmark's worker count: 4-way, never above the usable CPUs."""
    return capped_cpu_workers(4)


def _build(bundle, workers: int) -> tuple[NetClusIndex, float]:
    """One timed build of the full instance ladder."""
    start = time.perf_counter()
    index = NetClusIndex.build(
        bundle.network,
        bundle.trajectories,
        bundle.sites,
        gamma=0.75,
        tau_min_km=DEFAULT_TAU_RANGE[0],
        tau_max_km=DEFAULT_TAU_RANGE[1],
        workers=workers,
    )
    return index, time.perf_counter() - start


def _assert_parity(sequential: NetClusIndex, parallel: NetClusIndex) -> str:
    """Both builds must serialize to byte-identical payloads (sans timings)."""
    digest_sequential = payload_digest(sequential, include_timings=False)
    digest_parallel = payload_digest(parallel, include_timings=False)
    assert digest_sequential == digest_parallel, (
        "parallel build diverged from the sequential path: "
        f"{digest_sequential[:16]} != {digest_parallel[:16]}"
    )
    return digest_sequential


def _calibration_burn() -> None:
    """Fixed CPU-bound task for :func:`_parallel_efficiency`.

    Module-level so ``multiprocessing`` can pickle it under the spawn
    start method (macOS/Windows default).
    """
    acc = 1.0
    for i in range(1, 2_000_000):
        acc = acc * 1.0000001 + 1e-9 * i


def _parallel_efficiency(workers: int) -> float:
    """How much CPU the host really grants *workers* concurrent processes.

    Runs a short fixed numeric task once alone and once `workers`-fold in
    parallel; 1.0 means perfectly independent cores, ~1/workers means the
    "cores" share one execution unit (e.g. hyperthread siblings or a
    throttled container).  Recorded alongside the speedup so a sub-target
    measurement on starved hardware is explainable from the JSON alone.
    """
    start = time.perf_counter()
    _calibration_burn()
    single = time.perf_counter() - start

    processes = [
        multiprocessing.Process(target=_calibration_burn) for _ in range(workers)
    ]
    start = time.perf_counter()
    for process in processes:
        process.start()
    for process in processes:
        process.join()
    concurrent = time.perf_counter() - start
    return single / concurrent * 1.0 if concurrent > 0 else 0.0


def _compare_builds(bundle, workers: int, rounds: int = 3) -> dict:
    """Best-of-*rounds* wall-clock comparison of workers=1 vs workers=N."""
    sequential_seconds = float("inf")
    parallel_seconds = float("inf")
    digest = None
    for round_number in range(rounds):
        sequential_index, elapsed = _build(bundle, workers=1)
        sequential_seconds = min(sequential_seconds, elapsed)
        parallel_index, elapsed = _build(bundle, workers=workers)
        parallel_seconds = min(parallel_seconds, elapsed)
        if round_number == 0:
            digest = _assert_parity(sequential_index, parallel_index)
            stage_names = [stat.stage for stat in parallel_index.build_stats]
            assert stage_names == list(STAGES), stage_names
    return {
        "workload": bundle.name,
        "num_instances": sequential_index.num_instances,
        "workers": workers,
        "usable_cpus": usable_cpu_count(),
        "sequential_s": sequential_seconds,
        "parallel_s": parallel_seconds,
        "speedup": sequential_seconds / parallel_seconds,
        "payload_digest": digest[:16],
        "stage_seconds": {
            stat.stage: round(stat.seconds, 4)
            for stat in sequential_index.build_stats
        },
    }


def test_parallel_build_smoke(tiny_bundle):
    """Fast CI check: workers=2 parity on the tiny workload + stage sanity."""
    row = _compare_builds(tiny_bundle, workers=2, rounds=1)
    print()
    print_table([row], title="Parallel build — smoke (tiny workload)")
    # parity is asserted inside _compare_builds; the tiny workload is too
    # small (and CI hardware too variable) for a wall-clock assertion


def test_parallel_build_medium(benchmark):
    """min(4, usable-CPU) workers on the medium workload; ≥ 2× given ≥ 4 CPUs."""
    bundle = beijing_like(scale="medium", seed=42)
    workers = _default_workers()
    row = benchmark.pedantic(
        lambda: _compare_builds(bundle, workers=workers), rounds=1, iterations=1
    )
    row["parallel_efficiency"] = _parallel_efficiency(workers)
    row["target_speedup"] = TARGET_SPEEDUP
    print()
    print_table([row], title="Parallel build — medium scalability workload")
    BENCH_JSON.write_text(json.dumps(row, indent=2) + "\n")
    if row["usable_cpus"] >= 4:
        assert row["speedup"] >= TARGET_SPEEDUP, row
    else:  # not enough cores to express the speedup; parity still held
        assert row["speedup"] > 0.0


def build_parser() -> argparse.ArgumentParser:
    """The script-entry CLI (see ``benchmarks/conftest.py``'s registry)."""
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload, workers=2, parity only (the CI configuration)",
    )
    parser.add_argument(
        "--workers",
        type=resolve_workers,
        default=None,
        help="pool size (default: min(4, usable CPUs); accepts 'auto')",
    )
    return parser


def main(argv=None) -> int:
    """Script entry point: ``--smoke`` for the CI-sized run."""
    args = build_parser().parse_args(argv)
    workers = _default_workers() if args.workers is None else args.workers
    if args.smoke:
        bundle = beijing_like(scale="tiny", seed=42)
        row = _compare_builds(bundle, workers=2, rounds=1)
        print_table([row], title="Parallel build — smoke (tiny workload)")
    else:
        bundle = beijing_like(scale="medium", seed=42)
        row = _compare_builds(bundle, workers=workers)
        row["parallel_efficiency"] = _parallel_efficiency(workers)
        row["target_speedup"] = TARGET_SPEEDUP
        print_table([row], title="Parallel build — medium scalability workload")
        BENCH_JSON.write_text(json.dumps(row, indent=2) + "\n")
        print(f"Recorded in {BENCH_JSON}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
