"""Benchmark — trajectory-sharded query path vs the single-shard baseline.

The sharded query path (``repro.core.shards``) splits every coverage into
S disjoint trajectory shards whose marginal-gain work a
:class:`~repro.service.PlacementService` evaluates on a persistent worker
pool (``query_workers``).  The contract is twofold:

* **parity** — sharded answers are byte-identical to ``shards=1``: site
  selections compare element-for-element and per-trajectory utility
  vectors byte-compare equal.  Asserted here on every measured
  configuration (and by ``tools/check_shard_parity.py`` in CI).
* **speedup** — on the medium scalability workload a sharded service
  should answer a query batch ≥ 2× faster than the unsharded baseline —
  *given the cores to run on*.  The shard and worker counts default to
  ``min(4, usable CPUs)``; the measurement is recorded in
  ``benchmarks/BENCH_sharded_query.json`` either way, and the assertion
  engages only when the host offers at least four usable CPUs (honest
  sub-target numbers are recorded on starved hardware, like the
  two-hyperthread CI container).

``test_sharded_query_smoke`` is the fast CI check (tiny workload,
shards=2 parity on both engines); running the module as a script
(``python benchmarks/bench_sharded_query.py [--smoke]``) performs the
same measurements without pytest.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.datasets import beijing_like
from repro.experiments.reporting import print_table
from repro.experiments.runner import DEFAULT_TAU_RANGE
from repro.service.placement import PlacementService
from repro.service.specs import QuerySpec
from repro.utils.parallel import capped_cpu_workers, resolve_workers, usable_cpu_count

BENCH_JSON = Path(__file__).parent / "BENCH_sharded_query.json"

#: batch-query speedup the medium workload must reach on ≥ 4 usable CPUs
TARGET_SPEEDUP = 2.0


def _default_shards() -> int:
    """Shard/worker count for the benchmark: 4-way, never above usable CPUs."""
    return capped_cpu_workers(4)


def _query_batch() -> list[QuerySpec]:
    """A k-heavy batch at two τ, the shape a served index sees."""
    return [
        QuerySpec(k=20, tau_km=0.8),
        QuerySpec(k=20, tau_km=0.8, preference="linear"),
        QuerySpec(k=20, tau_km=1.6),
    ]


def _measure(index, engine: str, shards: int, workers, specs, repeats: int = 3):
    """Best-of-*repeats* batch latency through one service configuration."""
    service = PlacementService(
        index, engine=engine, shards=shards, query_workers=workers
    )
    best_seconds = float("inf")
    best_stage = {}
    results = None
    for _ in range(repeats):
        service.stats.reset()
        start = time.perf_counter()
        results = service.batch_query(specs, use_cache=False)
        elapsed = time.perf_counter() - start
        if elapsed < best_seconds:
            best_seconds = elapsed
            best_stage = service.stats.stage_seconds()
    service.close()
    return results, best_seconds, best_stage


def _assert_parity(baseline, sharded, label: str) -> None:
    """Sharded answers must byte-compare equal to the unsharded baseline."""
    for want, got in zip(baseline, sharded):
        assert got.sites == want.sites, (
            f"{label}: selection diverged {got.sites} != {want.sites}"
        )
        assert (
            np.asarray(got.per_trajectory_utility).tobytes()
            == np.asarray(want.per_trajectory_utility).tobytes()
        ), f"{label}: per-trajectory utilities diverged"


def _compare(bundle, shards: int, workers, repeats: int = 3) -> dict:
    """Measure shards=1 vs shards=S on both engines over one shared index."""
    problem = bundle.problem()
    index = problem.build_netclus_index(
        gamma=0.75,
        tau_min_km=DEFAULT_TAU_RANGE[0],
        tau_max_km=DEFAULT_TAU_RANGE[1],
    )
    specs = _query_batch()
    rows = []
    for engine in ("sparse", "dense"):
        baseline, baseline_seconds, baseline_stage = _measure(
            index, engine, 1, 1, specs, repeats
        )
        sharded, sharded_seconds, sharded_stage = _measure(
            index, engine, shards, workers, specs, repeats
        )
        _assert_parity(baseline, sharded, f"engine={engine} shards={shards}")
        rows.append(
            {
                "engine": engine,
                "shards": shards,
                "unsharded_s": baseline_seconds,
                "sharded_s": sharded_seconds,
                "speedup": baseline_seconds / sharded_seconds,
                "greedy_speedup": (
                    baseline_stage["greedy_seconds"] / sharded_stage["greedy_seconds"]
                    if sharded_stage.get("greedy_seconds")
                    else 0.0
                ),
                "stage_seconds": {k: round(v, 4) for k, v in sharded_stage.items()},
            }
        )
    return {
        "workload": bundle.name,
        "num_trajectories": bundle.num_trajectories,
        "shards": shards,
        "query_workers": resolve_workers(workers),
        "usable_cpus": usable_cpu_count(),
        "specs": [spec.to_dict() for spec in specs],
        "rows": rows,
        # headline number: the best total batch speedup across engines
        "speedup": max(row["speedup"] for row in rows),
        "target_speedup": TARGET_SPEEDUP,
    }


def test_sharded_query_smoke(tiny_bundle):
    """Fast CI check: shards=2 parity on the tiny workload, both engines."""
    record = _compare(tiny_bundle, shards=2, workers=2, repeats=1)
    print()
    print_table(record["rows"], title="Sharded query — smoke (tiny workload)")
    # parity is asserted inside _compare; the tiny workload is too small
    # (and CI hardware too variable) for a wall-clock assertion


def test_sharded_query_medium(benchmark):
    """min(4, usable-CPU) shards on the medium workload; ≥ 2× given ≥ 4 CPUs."""
    bundle = beijing_like(scale="medium", seed=42)
    shards = _default_shards()
    record = benchmark.pedantic(
        lambda: _compare(bundle, shards=shards, workers="auto"),
        rounds=1,
        iterations=1,
    )
    print()
    print_table(record["rows"], title="Sharded query — medium scalability workload")
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
    if record["usable_cpus"] >= 4:
        assert record["speedup"] >= TARGET_SPEEDUP, record
    else:  # not enough cores to express the speedup; parity still held
        assert record["speedup"] > 0.0


def build_parser() -> argparse.ArgumentParser:
    """The script-entry CLI (see ``benchmarks/conftest.py``'s registry)."""
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload, shards=2, parity only (the CI configuration)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count (default: min(4, usable CPUs))",
    )
    return parser


def main(argv=None) -> int:
    """Script entry point: ``--smoke`` for the CI-sized run."""
    args = build_parser().parse_args(argv)
    if args.smoke:
        bundle = beijing_like(scale="tiny", seed=42)
        record = _compare(bundle, shards=args.shards or 2, workers=2, repeats=1)
        print_table(record["rows"], title="Sharded query — smoke (tiny workload)")
    else:
        bundle = beijing_like(scale="medium", seed=42)
        record = _compare(bundle, shards=args.shards or _default_shards(), workers="auto")
        print_table(record["rows"], title="Sharded query — medium scalability workload")
        BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
        print(f"Recorded in {BENCH_JSON} (speedup {record['speedup']:.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
