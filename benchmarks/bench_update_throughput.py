"""Benchmark — streaming update engine vs one-at-a-time dynamic updates.

:meth:`NetClusIndex.apply_updates` absorbs a mixed :class:`UpdateBatch`
(trajectory additions/removals, site additions/removals) sharing the
shortest-path engine, the trajectory registry rebuild and the per-instance
node→cluster lookup tables across the whole batch, where the singular calls
pay that setup per item.  Both paths are required to leave the index in a
byte-identical state — ``_assert_identical_answers`` compares site
selections and raw per-trajectory utility bytes across τ and both coverage
engines before any timing is reported.

``test_update_throughput_smoke`` is the fast CI check (tiny workload);
``test_update_throughput_table10_small`` runs the 400-item mixed batch on
the Table 10 small workload, asserts the ≥ 5× per-item speedup, and records
the measurement in ``benchmarks/BENCH_update_throughput.json``.
"""

from __future__ import annotations

import copy
import json
import math
import time
from pathlib import Path

import numpy as np

from repro.core.netclus import NetClusIndex, UpdateBatch
from repro.core.query import TOPSQuery
from repro.datasets import beijing_like
from repro.experiments.reporting import print_table
from repro.experiments.runner import DEFAULT_TAU_RANGE
from repro.trajectory.generators import CommuterModel
from repro.trajectory.model import Trajectory
from repro.utils.rng import ensure_rng

BENCH_JSON = Path(__file__).parent / "BENCH_update_throughput.json"

#: share of a mixed batch going to each update kind
_MIX = {"add_traj": 0.4, "remove_traj": 0.2, "add_site": 0.3, "remove_site": 0.1}


def _build_index(bundle, seed=42):
    """The Table 10 setup: half the trajectories and half the sites indexed."""
    base = bundle.trajectories.sample(max(1, bundle.num_trajectories // 2), seed=seed)
    sites = bundle.sites[: max(10, len(bundle.sites) // 2)]
    index = NetClusIndex.build(
        bundle.network,
        base,
        sites,
        gamma=0.75,
        tau_min_km=DEFAULT_TAU_RANGE[0],
        tau_max_km=DEFAULT_TAU_RANGE[1],
    )
    return index


def _mixed_batch(bundle, index, num_items, seed=42):
    """A mixed UpdateBatch of *num_items* total updates against *index*."""
    rng = ensure_rng(seed)
    num_add_traj = int(num_items * _MIX["add_traj"])
    num_remove_traj = int(num_items * _MIX["remove_traj"])
    num_add_site = int(num_items * _MIX["add_site"])
    num_remove_site = num_items - num_add_traj - num_remove_traj - num_add_site

    next_id = max(index.trajectory_ids) + 1
    add_trajectories = []
    for trajectory in CommuterModel(bundle.network, seed=seed + 1).generate(num_add_traj):
        add_trajectories.append(
            Trajectory(
                traj_id=next_id,
                nodes=trajectory.nodes,
                cumulative_km=trajectory.cumulative_km,
            )
        )
        next_id += 1
    remove_trajectories = [
        int(t)
        for t in rng.choice(index.trajectory_ids, size=num_remove_traj, replace=False)
    ]
    available = [s for s in bundle.network.node_ids() if s not in index.sites]
    add_sites = [
        int(s) for s in rng.choice(available, size=num_add_site, replace=False)
    ]
    remove_sites = [
        int(s)
        for s in rng.choice(sorted(index.sites), size=num_remove_site, replace=False)
    ]
    return UpdateBatch(
        add_trajectories=add_trajectories,
        remove_trajectories=remove_trajectories,
        add_sites=add_sites,
        remove_sites=remove_sites,
    )


def _sequential_apply(index, batch):
    """The one-at-a-time loop the batch API replaces (same canonical order)."""
    for traj_id in batch.remove_trajectories:
        index.remove_trajectory(traj_id)
    for site in batch.remove_sites:
        index.remove_site(site)
    for trajectory in batch.add_trajectories:
        index.add_trajectory(trajectory)
    for site in batch.add_sites:
        index.add_site(site)


def _assert_identical_answers(left, right):
    """Both indexes must answer every probe byte-identically."""
    for tau in (0.8, 1.6, 3.2):
        for engine in ("dense", "sparse"):
            query = TOPSQuery(k=5, tau_km=tau)
            a = left.query(query, engine=engine)
            b = right.query(query, engine=engine)
            assert a.sites == b.sites, f"selection mismatch at tau={tau} ({engine})"
            assert (
                np.asarray(a.per_trajectory_utility).tobytes()
                == np.asarray(b.per_trajectory_utility).tobytes()
            ), f"utility mismatch at tau={tau} ({engine})"


def _compare_update_paths(bundle, num_items, seed=42, rounds=3):
    """Time the sequential loop vs apply_updates on identical index copies.

    Both paths run *rounds* times from fresh copies of the same built index
    (best-of timing); state parity is asserted on the first round's pair.
    """
    index = _build_index(bundle, seed=seed)
    batch = _mixed_batch(bundle, index, num_items, seed=seed)
    sequential_seconds = math.inf
    batched_seconds = math.inf
    for round_number in range(rounds):
        sequential_index = copy.deepcopy(index)
        batched_index = copy.deepcopy(index)

        start = time.perf_counter()
        _sequential_apply(sequential_index, batch)
        sequential_seconds = min(sequential_seconds, time.perf_counter() - start)

        start = time.perf_counter()
        applied = batched_index.apply_updates(batch)
        batched_seconds = min(batched_seconds, time.perf_counter() - start)

        assert applied == len(batch)
        if round_number == 0:
            _assert_identical_answers(sequential_index, batched_index)
    return {
        "workload": bundle.name,
        "batch_items": len(batch),
        "add_traj": len(batch.add_trajectories),
        "remove_traj": len(batch.remove_trajectories),
        "add_site": len(batch.add_sites),
        "remove_site": len(batch.remove_sites),
        "sequential_ms_per_item": 1000.0 * sequential_seconds / len(batch),
        "batched_ms_per_item": 1000.0 * batched_seconds / len(batch),
        "sequential_s": sequential_seconds,
        "batched_s": batched_seconds,
        "speedup_per_item": sequential_seconds / batched_seconds,
    }


def test_update_throughput_smoke(tiny_bundle):
    """Fast CI check: batch == sequential state and batching is not slower."""
    row = _compare_update_paths(tiny_bundle, num_items=120)
    print()
    print_table([row], title="Update throughput — smoke (tiny workload)")
    assert row["speedup_per_item"] > 1.0


def test_update_throughput_table10_small(benchmark):
    """≥ 5× per item on the Table 10 small workload's 400-item mixed batch."""
    bundle = beijing_like(scale="small", seed=42)
    row = benchmark.pedantic(
        lambda: _compare_update_paths(bundle, num_items=400),
        rounds=1,
        iterations=1,
    )
    print()
    print_table([row], title="Update throughput — 400-item mixed batch (small)")
    BENCH_JSON.write_text(json.dumps(row, indent=2) + "\n")
    assert row["speedup_per_item"] >= 5.0
