"""Benchmark E9 — Fig. 8: the TOPS2 variant (convex capture probability)."""

from __future__ import annotations

from repro.core.preference import ConvexProbabilityPreference
from repro.core.query import TOPSQuery
from repro.experiments.figures import fig08_tops2
from repro.experiments.reporting import print_table


def test_netclus_query_convex_preference(benchmark, small_context):
    query = TOPSQuery(k=5, tau_km=0.8, preference=ConvexProbabilityPreference())
    result = benchmark(lambda: small_context.run_netclus(query))
    assert len(result.sites) == query.k


def test_inc_greedy_query_convex_preference(benchmark, small_context):
    query = TOPSQuery(k=5, tau_km=0.8, preference=ConvexProbabilityPreference())
    result = benchmark(lambda: small_context.run_inc_greedy(query))
    assert len(result.sites) == query.k


def test_fig08_rows(benchmark, small_context):
    rows = benchmark.pedantic(
        lambda: fig08_tops2.run(tau_values=(0.4, 0.8), k_values=(5, 10), context=small_context),
        rounds=1,
        iterations=1,
    )
    print()
    print_table(rows, title="Fig. 8 — TOPS2 (convex preference)")
    for row in rows:
        # NetClus stays within a reasonable band of Inc-Greedy's utility
        assert row["netclus_utility_pct"] >= 0.7 * row["incg_utility_pct"]
