"""Benchmark E13 — Table 10: dynamic index update cost."""

from __future__ import annotations

from repro.experiments.figures import table10_updates
from repro.experiments.reporting import print_table
from repro.trajectory.generators import CommuterModel
from repro.trajectory.model import Trajectory


def test_single_trajectory_addition(benchmark, small_context):
    """Adding one trajectory touches every instance of the index."""
    index = small_context.netclus
    model = CommuterModel(small_context.bundle.network, seed=777)
    generated = model.generate(200)
    counter = {"next": max(index._trajectory_ids) + 1}

    def add_one():
        trajectory = generated[counter["next"] % 200]
        relabeled = Trajectory(
            traj_id=counter["next"],
            nodes=trajectory.nodes,
            cumulative_km=trajectory.cumulative_km,
        )
        counter["next"] += 1
        index.add_trajectory(relabeled)

    benchmark.pedantic(add_one, rounds=50, iterations=1)


def test_single_site_addition(benchmark, small_context):
    """Adding one candidate site touches a single cluster per instance."""
    index = small_context.netclus
    nodes = [n for n in small_context.bundle.network.node_ids()]
    counter = {"i": 0}

    def add_one():
        node = nodes[counter["i"] % len(nodes)]
        counter["i"] += 1
        index.add_site(node)

    benchmark.pedantic(add_one, rounds=50, iterations=1)


def test_table10_rows(benchmark, tiny_bundle):
    rows = benchmark.pedantic(
        lambda: table10_updates.run(batch_sizes=(20, 40, 80), bundle=tiny_bundle),
        rounds=1,
        iterations=1,
    )
    print()
    print_table(rows, title="Table 10 — index update cost (batched additions)")
    # trajectory additions are costlier than site additions (paper's finding)
    totals_traj = sum(row["trajectory_add_s"] for row in rows)
    totals_site = sum(row["site_add_s"] for row in rows)
    assert totals_traj >= totals_site * 0.5
