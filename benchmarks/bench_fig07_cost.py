"""Benchmark E7 — Fig. 7a / Fig. 9: the TOPS-COST extension.

Benchmarks the budgeted greedy at the paper's parameters and regenerates the
utility / #sites / runtime rows across the site-cost spread σ.
"""

from __future__ import annotations

import numpy as np

from repro.core.variants import solve_tops_cost
from repro.datasets.workloads import site_costs_normal
from repro.experiments.figures import fig07_cost_capacity
from repro.experiments.reporting import print_table


def test_tops_cost_query(benchmark, small_context, default_query):
    coverage = small_context.coverage(default_query)
    costs = site_costs_normal(coverage.num_sites, std=0.5, seed=13)
    result = benchmark.pedantic(
        lambda: solve_tops_cost(coverage, budget=5.0, site_costs=costs),
        rounds=3,
        iterations=1,
    )
    spent = float(np.sum(costs[coverage.columns_for_labels(result.sites)]))
    assert spent <= 5.0 + 1e-9


def test_fig07_cost_rows(benchmark, small_context):
    rows = benchmark.pedantic(
        lambda: fig07_cost_capacity.run_cost(small_context, std_values=(0.0, 0.5, 1.0)),
        rounds=1,
        iterations=1,
    )
    print()
    print_table(rows, title="Fig. 7a / Fig. 9 — TOPS-COST vs site-cost std-dev")
    # a wider cost spread lets the greedy afford more sites and more utility
    assert rows[-1]["incg_num_sites"] >= rows[0]["incg_num_sites"]
    assert rows[-1]["incg_utility_pct"] >= rows[0]["incg_utility_pct"] - 1e-9
