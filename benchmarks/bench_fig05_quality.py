"""Benchmark E4 — Fig. 5: solution quality versus k and τ.

The quality sweep itself is the artefact; the benchmark measures one full
k-sweep over the four algorithms and prints both panels.
"""

from __future__ import annotations

from repro.experiments.figures import fig05_quality
from repro.experiments.reporting import print_table


def test_fig05_quality_vs_k(benchmark, small_context):
    rows = benchmark.pedantic(
        lambda: fig05_quality.run_varying_k(small_context, k_values=(1, 5, 10), tau_km=0.8),
        rounds=1,
        iterations=1,
    )
    print()
    print_table(rows, title="Fig. 5a — utility (%) vs k")
    # NetClus stays close to Inc-Greedy (the paper reports within ~7%)
    for row in rows:
        assert row["netclus_utility_pct"] >= 0.7 * row["incg_utility_pct"]


def test_fig05_quality_vs_tau(benchmark, small_context):
    rows = benchmark.pedantic(
        lambda: fig05_quality.run_varying_tau(
            small_context, tau_values=(0.4, 0.8, 1.6), k=5
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print_table(rows, title="Fig. 5b — utility (%) vs τ")
    # utility grows with the coverage threshold
    assert rows[-1]["incg_utility_pct"] >= rows[0]["incg_utility_pct"] - 1e-9
