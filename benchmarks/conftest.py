"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper (see
DESIGN.md's experiment index) at a laptop-friendly scale and measures the
operation that dominates that experiment.  Run with::

    pytest benchmarks/ --benchmark-only

Pass ``-s`` to also see the regenerated rows printed by each module.
"""

from __future__ import annotations

import pytest

from repro.core.query import TOPSQuery
from repro.datasets import beijing_like, beijing_small_like
from repro.experiments.runner import build_context


@pytest.fixture(scope="session")
def tiny_context():
    """Experiment context over the tiny Beijing-like dataset."""
    return build_context(scale="tiny", seed=42, tau_max_km=4.0)


@pytest.fixture(scope="session")
def small_context():
    """Experiment context over the small Beijing-like dataset (default scale)."""
    return build_context(scale="small", seed=42, tau_max_km=8.0)


@pytest.fixture(scope="session")
def beijing_small_context():
    """Context over the Beijing-Small analogue used for the optimal comparison."""
    bundle = beijing_small_like(num_trajectories=80, num_sites=20, seed=42)
    return build_context(bundle=bundle, tau_max_km=4.0)


@pytest.fixture(scope="session")
def default_query():
    """The paper's default query: k = 5, τ = 0.8 km, binary preference."""
    return TOPSQuery(k=5, tau_km=0.8)


@pytest.fixture(scope="session")
def tiny_bundle():
    """The tiny Beijing-like bundle for drivers that need raw data."""
    return beijing_like(scale="tiny", seed=42)
