"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper (see
DESIGN.md's experiment index) at a laptop-friendly scale and measures the
operation that dominates that experiment.  Run with::

    pytest benchmarks/ --benchmark-only

Pass ``-s`` to also see the regenerated rows printed by each module.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

from repro.core.query import TOPSQuery
from repro.datasets import beijing_like, beijing_small_like
from repro.experiments.runner import build_context

#: Script-style benchmark modules: every module listed here exposes a
#: module-level ``build_parser()`` whose options include ``--smoke`` and a
#: ``main(argv)`` entry point, so ``python benchmarks/<name>.py --smoke``
#: is a fast, CI-sized run.  CI's bench-smoke job iterates THIS registry
#: for its script-entry steps (instead of hand-maintained per-file steps
#: with ``--ignore`` patterns), and ``bench_smoke_entries.py`` asserts the
#: registry matches the modules on disk — a new script-style benchmark
#: that forgets to register, or a registered module that drops its
#: ``--smoke`` flag, fails the pytest ``-k smoke`` pass instead of
#: silently diverging from the script steps.
SCRIPT_SMOKE_BENCHMARKS = (
    "bench_bitset_kernels",
    "bench_cold_start",
    "bench_incremental_coverage",
    "bench_parallel_build",
    "bench_serving",
    "bench_sharded_query",
)


def script_entry_modules() -> tuple[str, ...]:
    """Benchmark modules on disk that have a ``__main__`` script entry."""
    directory = Path(__file__).parent
    return tuple(
        sorted(
            path.stem
            for path in directory.glob("bench_*.py")
            if '__name__ == "__main__"' in path.read_text()
        )
    )


def load_script_benchmark(name: str):
    """Import a registered benchmark module by file path.

    Path-based (not ``import``-based) so the loader works identically
    under pytest and from a standalone script regardless of ``sys.path``
    — ``benchmarks/`` is not a package.
    """
    path = Path(__file__).parent / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"_bench_script_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="session")
def tiny_context():
    """Experiment context over the tiny Beijing-like dataset."""
    return build_context(scale="tiny", seed=42, tau_max_km=4.0)


@pytest.fixture(scope="session")
def small_context():
    """Experiment context over the small Beijing-like dataset (default scale)."""
    return build_context(scale="small", seed=42, tau_max_km=8.0)


@pytest.fixture(scope="session")
def beijing_small_context():
    """Context over the Beijing-Small analogue used for the optimal comparison."""
    bundle = beijing_small_like(num_trajectories=80, num_sites=20, seed=42)
    return build_context(bundle=bundle, tau_max_km=4.0)


@pytest.fixture(scope="session")
def default_query():
    """The paper's default query: k = 5, τ = 0.8 km, binary preference."""
    return TOPSQuery(k=5, tau_km=0.8)


@pytest.fixture(scope="session")
def tiny_bundle():
    """The tiny Beijing-like bundle for drivers that need raw data."""
    return beijing_like(scale="tiny", seed=42)
