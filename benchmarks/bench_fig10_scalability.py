"""Benchmark E10 — Fig. 10: scalability with #candidate sites and #trajectories."""

from __future__ import annotations

from repro.experiments.figures import fig10_scalability
from repro.experiments.reporting import print_table


def test_fig10_varying_sites(benchmark, tiny_bundle):
    rows = benchmark.pedantic(
        lambda: fig10_scalability.run_varying_sites(
            tiny_bundle, site_fractions=(0.5, 1.0), k=5
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print_table(rows, title="Fig. 10a — scalability vs #candidate sites")
    assert rows[0]["num_sites"] < rows[1]["num_sites"]


def test_fig10_varying_trajectories(benchmark, tiny_bundle):
    rows = benchmark.pedantic(
        lambda: fig10_scalability.run_varying_trajectories(
            tiny_bundle, trajectory_fractions=(0.5, 1.0), k=5
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print_table(rows, title="Fig. 10b — scalability vs #trajectories")
    assert rows[0]["num_trajectories"] < rows[1]["num_trajectories"]
