"""Benchmark E1 — Table 7: effect of the index-resolution parameter γ.

Measures the offline NetClus construction (the cost that γ controls) and
regenerates the build-time / index-size / error rows.
"""

from __future__ import annotations

from repro.experiments.figures import table07_gamma
from repro.experiments.reporting import print_table


def test_netclus_build_gamma_075(benchmark, tiny_bundle):
    """Offline index construction at the paper's chosen γ = 0.75."""
    problem = tiny_bundle.problem()
    problem.detour_matrix()  # pre-warm the flat oracle so only the build is timed

    def build():
        return problem.build_netclus_index(gamma=0.75, tau_min_km=0.4, tau_max_km=4.0)

    index = benchmark.pedantic(build, rounds=3, iterations=1)
    assert index.num_instances >= 1


def test_netclus_build_gamma_025_is_larger(benchmark, tiny_bundle):
    """A finer ladder (γ = 0.25) builds more instances and a bigger index."""
    problem = tiny_bundle.problem()

    def build():
        return problem.build_netclus_index(gamma=0.25, tau_min_km=0.4, tau_max_km=4.0)

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    reference = problem.build_netclus_index(gamma=1.0, tau_min_km=0.4, tau_max_km=4.0)
    assert index.num_instances > reference.num_instances
    assert index.storage_bytes() >= reference.storage_bytes()


def test_table07_rows(benchmark, tiny_bundle):
    rows = benchmark.pedantic(
        lambda: table07_gamma.run(gamma_values=(0.5, 0.75, 1.0), bundle=tiny_bundle),
        rounds=1,
        iterations=1,
    )
    print()
    print_table(rows, title="Table 7 — variation across index resolution γ")
    assert len(rows) == 3
