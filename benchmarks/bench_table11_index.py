"""Benchmark E14 — Table 11: per-radius index construction details."""

from __future__ import annotations

from repro.core.gdsp import GreedyGDSP
from repro.experiments.figures import table11_index_construction
from repro.experiments.reporting import print_table


def test_gdsp_clustering_fine_radius(benchmark, small_context):
    """Greedy-GDSP at a fine radius (many clusters)."""
    gdsp = GreedyGDSP(small_context.bundle.network)
    result = benchmark.pedantic(lambda: gdsp.cluster(0.1), rounds=3, iterations=1)
    assert result.num_clusters > 0


def test_gdsp_clustering_coarse_radius(benchmark, small_context):
    """Greedy-GDSP at a coarse radius (few clusters)."""
    gdsp = GreedyGDSP(small_context.bundle.network)
    result = benchmark.pedantic(lambda: gdsp.cluster(1.0), rounds=3, iterations=1)
    assert result.num_clusters > 0


def test_table11_rows(benchmark, small_context):
    rows = benchmark.pedantic(
        lambda: table11_index_construction.run(context=small_context),
        rounds=1,
        iterations=1,
    )
    print()
    print_table(rows, title="Table 11 — index construction details (γ = 0.75)")
    clusters = [row["num_clusters"] for row in rows]
    trajectory_lists = [row["mean_trajectory_list"] for row in rows]
    # coarser radii -> fewer clusters and longer per-cluster trajectory lists
    assert clusters == sorted(clusters, reverse=True)
    assert trajectory_lists[-1] >= trajectory_lists[0]
