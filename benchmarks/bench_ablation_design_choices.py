"""Benchmark — ablations of design choices (Section 4.2 and implementation).

Regenerates the representative-selection, greedy-update-strategy and
GDSP-counting ablation tables and measures the two greedy update strategies.
"""

from __future__ import annotations

from repro.core.greedy import IncGreedy
from repro.core.query import TOPSQuery
from repro.experiments.figures import ablation_design_choices
from repro.experiments.reporting import print_table


def test_inc_greedy_incremental_updates(benchmark, small_context):
    """Algorithm 1's incremental marginal updates (k = 10)."""
    query = TOPSQuery(k=10, tau_km=0.8)
    coverage = small_context.coverage(query)
    greedy = IncGreedy(coverage, update_strategy="incremental")
    columns, _, _ = benchmark(lambda: greedy.select(10))
    assert len(columns) == 10


def test_inc_greedy_recompute_updates(benchmark, small_context):
    """Full marginal recomputation per iteration (k = 10)."""
    query = TOPSQuery(k=10, tau_km=0.8)
    coverage = small_context.coverage(query)
    greedy = IncGreedy(coverage, update_strategy="recompute")
    columns, _, _ = benchmark(lambda: greedy.select(10))
    assert len(columns) == 10


def test_ablation_tables(benchmark, tiny_bundle):
    def run_all_ablations():
        return {
            "representative_strategy": ablation_design_choices.run_representative_strategy(
                tiny_bundle, k_values=(5,)
            ),
            "update_strategy": ablation_design_choices.run_update_strategy(tiny_bundle, k=5),
            "gdsp_counting": ablation_design_choices.run_gdsp_counting(tiny_bundle),
        }

    panels = benchmark.pedantic(run_all_ablations, rounds=1, iterations=1)
    print()
    print_table(panels["representative_strategy"], title="Ablation — representative selection")
    print()
    print_table(panels["update_strategy"], title="Ablation — greedy update strategy")
    print()
    print_table(panels["gdsp_counting"], title="Ablation — GDSP coverage counting")
    # the two update strategies must land on the same utility
    utilities = [row["utility"] for row in panels["update_strategy"]]
    assert abs(utilities[0] - utilities[1]) < 1e-6
    # the closest-to-center strategy should not be materially worse
    for row in panels["representative_strategy"]:
        assert row["closest_utility_pct"] >= row["most_frequent_utility_pct"] - 10.0
