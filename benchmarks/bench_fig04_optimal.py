"""Benchmark E3 — Fig. 4: comparison with the optimal algorithm.

Measures the exact solver against Inc-Greedy on the Beijing-Small analogue
and regenerates the utility/runtime series of Fig. 4 (printed with ``-s``).
"""

from __future__ import annotations

from repro.core.greedy import IncGreedy
from repro.core.optimal import OptimalSolver
from repro.experiments.figures import fig04_optimal
from repro.experiments.reporting import print_table


def test_optimal_solver_runtime(benchmark, beijing_small_context, default_query):
    """Branch-and-bound exact solution on the small instance."""
    coverage = beijing_small_context.coverage(default_query)

    def run():
        return OptimalSolver(coverage).solve(default_query)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result.sites) <= default_query.k


def test_inc_greedy_runtime_small_instance(benchmark, beijing_small_context, default_query):
    """Inc-Greedy on the same instance — orders of magnitude faster than OPT."""
    coverage = beijing_small_context.coverage(default_query)
    result = benchmark(lambda: IncGreedy(coverage).solve(default_query))
    assert len(result.sites) == default_query.k


def test_fig04_series(benchmark, beijing_small_context):
    """Regenerate the Fig. 4 rows (k sweep with OPT/INCG/FMG/NetClus/FM-NetClus)."""
    rows = benchmark.pedantic(
        lambda: fig04_optimal.run(k_values=(1, 3, 5), context=beijing_small_context),
        rounds=1,
        iterations=1,
    )
    print()
    print_table(rows, title="Fig. 4 — comparison with optimal (reduced scale)")
    for row in rows:
        assert row["incg_utility_pct"] <= row["opt_utility_pct"] + 1e-6
