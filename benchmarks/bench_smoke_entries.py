"""Registry checks for the shared ``--smoke`` script-entry convention.

``benchmarks/conftest.py`` keeps ``SCRIPT_SMOKE_BENCHMARKS`` — the
registry of benchmark modules that double as scripts with a CI-sized
``--smoke`` run.  CI's bench-smoke job drives its script steps from that
registry, and these tests pin the convention from the pytest side:

* the registry and the modules on disk agree (a new ``bench_*.py`` with a
  ``__main__`` entry must register; a registered module must exist), and
* every registered module actually exposes ``build_parser()`` with a
  ``--smoke`` flag and a callable ``main``.

Both tests carry ``smoke`` in their names, so the CI ``-k smoke`` pass
runs them — the pytest pass and the script steps can no longer silently
diverge when new benchmark files land.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest


def _conftest():
    path = Path(__file__).with_name("conftest.py")
    spec = importlib.util.spec_from_file_location("_bench_conftest", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


_CONFTEST = _conftest()


def test_smoke_registry_matches_modules_on_disk():
    """Every script-entry benchmark is registered, and vice versa."""
    on_disk = _CONFTEST.script_entry_modules()
    registered = tuple(sorted(_CONFTEST.SCRIPT_SMOKE_BENCHMARKS))
    assert registered == on_disk, (
        "script-style benchmarks and conftest.SCRIPT_SMOKE_BENCHMARKS diverged: "
        f"registered {registered}, on disk {on_disk} — register new script "
        "benchmarks (with a --smoke flag) or drop stale entries"
    )


@pytest.mark.parametrize("name", sorted(_CONFTEST.SCRIPT_SMOKE_BENCHMARKS))
def test_smoke_entry_contract(name):
    """Registered modules expose build_parser() with --smoke and main()."""
    module = _CONFTEST.load_script_benchmark(name)
    assert callable(getattr(module, "main", None)), f"{name} has no main(argv)"
    parser = getattr(module, "build_parser", None)
    assert callable(parser), f"{name} has no build_parser()"
    options = {
        option
        for action in parser()._actions
        for option in action.option_strings
    }
    assert "--smoke" in options, f"{name}'s parser lost its --smoke flag"
