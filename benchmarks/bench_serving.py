"""Benchmark — the HTTP serving front end under mixed query/update load.

``repro.service.server`` is the "millions of users" claim made
falsifiable: an asyncio HTTP/1.1 layer with request coalescing, bounded
admission and a worker pool over the concurrency-safe
:class:`~repro.service.PlacementService`.  The contract is twofold:

* **parity** — placements served over HTTP are byte-identical to direct
  in-process ``batch_query`` calls: sites compare element-for-element and
  per-trajectory utility vectors byte-compare equal after the JSON round
  trip (Python's ``json`` emits shortest-repr floats, which round-trip
  ``float64`` exactly).  Asserted on every measured configuration and by
  the CI serving-smoke job.
* **throughput** — a served small-workload index should sustain
  ``TARGET_QPS`` mixed query/update traffic with warm caches — *given
  the cores to run on*.  The measurement (QPS, client-side p50/p99,
  coalesced/rejected counters) is recorded in
  ``benchmarks/BENCH_serving.json`` either way; the assertion engages
  only when the host offers at least four usable CPUs (per the
  repository's honest-bench convention — a two-hyperthread container
  records its honest sub-target numbers instead).

``test_serving_smoke`` is the fast CI check (tiny workload, parity only);
running the module as a script (``python benchmarks/bench_serving.py
[--smoke]``) performs the same measurements without pytest.
"""

from __future__ import annotations

import argparse
import http.client
import json
import random
import threading
import time
from collections import Counter
from pathlib import Path

import numpy as np

from repro.datasets import beijing_like
from repro.experiments.reporting import print_table
from repro.experiments.runner import DEFAULT_TAU_RANGE
from repro.service import PlacementService, QuerySpec, serve_in_background
from repro.utils.parallel import capped_cpu_workers, usable_cpu_count

BENCH_JSON = Path(__file__).parent / "BENCH_serving.json"

#: mixed-traffic QPS the small workload must sustain on ≥ 4 usable CPUs
TARGET_QPS = 100.0


def _spec_pool() -> list[QuerySpec]:
    """The query mix a served index sees: varied k, two τ, three ψ shapes."""
    return [
        QuerySpec(k=3, tau_km=0.8),
        QuerySpec(k=5, tau_km=0.8),
        QuerySpec(k=8, tau_km=0.8),
        QuerySpec(k=12, tau_km=0.8),
        QuerySpec(k=5, tau_km=0.8, preference="linear"),
        QuerySpec(k=5, tau_km=1.6),
        QuerySpec(k=8, tau_km=1.6, preference="linear"),
        QuerySpec(k=5, tau_km=1.6, capacity=40),
    ]


def _build_index(scale: str):
    bundle = beijing_like(scale=scale, seed=42)
    problem = bundle.problem()
    index = problem.build_netclus_index(
        gamma=0.75,
        tau_min_km=DEFAULT_TAU_RANGE[0],
        tau_max_km=DEFAULT_TAU_RANGE[1] if scale != "tiny" else 4.0,
    )
    return bundle, index


def _post(conn: http.client.HTTPConnection, path: str, payload) -> tuple[int, dict]:
    conn.request("POST", path, body=json.dumps(payload))
    response = conn.getresponse()
    return response.status, json.loads(response.read())


def _assert_parity(index, address, specs) -> None:
    """Served placements must byte-compare equal to direct service calls."""
    reference = PlacementService(index)
    host, port = address
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        status, body = _post(conn, "/query", [spec.to_dict() for spec in specs])
        assert status == 200, f"/query answered {status}: {body}"
        direct = reference.batch_query(specs, use_cache=False)
        for spec, served, want in zip(specs, body["results"], direct):
            assert tuple(served["sites"]) == want.sites, (
                f"{spec}: served selection diverged "
                f"{served['sites']} != {list(want.sites)}"
            )
            assert (
                np.asarray(served["per_trajectory_utility"], dtype=np.float64).tobytes()
                == np.asarray(want.per_trajectory_utility, dtype=np.float64).tobytes()
            ), f"{spec}: per-trajectory utilities diverged over HTTP"
    finally:
        conn.close()


class _ClientWorker(threading.Thread):
    """One load-generator client on a persistent keep-alive connection."""

    def __init__(self, address, specs, deadline: float, seed: int) -> None:
        super().__init__(daemon=True)
        self.address = address
        self.specs = specs
        self.deadline = deadline
        self.rng = random.Random(seed)
        self.latencies: list[float] = []
        self.statuses: Counter = Counter()

    def run(self) -> None:
        host, port = self.address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            while time.perf_counter() < self.deadline:
                spec = self.rng.choice(self.specs)
                start = time.perf_counter()
                try:
                    status, _ = _post(conn, "/query", [spec.to_dict()])
                except (http.client.HTTPException, OSError):
                    self.statuses["transport_error"] += 1
                    conn.close()
                    conn = http.client.HTTPConnection(host, port, timeout=30)
                    continue
                self.latencies.append(time.perf_counter() - start)
                self.statuses[status] += 1
        finally:
            conn.close()


class _UpdateWorker(threading.Thread):
    """Periodic site remove/re-add updates riding along with the queries."""

    def __init__(self, address, site: int, deadline: float, interval: float) -> None:
        super().__init__(daemon=True)
        self.address = address
        self.site = site
        self.deadline = deadline
        self.interval = interval
        self.applied = 0
        self.statuses: Counter = Counter()

    def run(self) -> None:
        host, port = self.address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        removed = False
        try:
            while time.perf_counter() < self.deadline:
                delta = (
                    {"add_sites": [self.site]}
                    if removed
                    else {"remove_sites": [self.site]}
                )
                try:
                    status, body = _post(conn, "/update", delta)
                except (http.client.HTTPException, OSError):
                    self.statuses["transport_error"] += 1
                    conn.close()
                    conn = http.client.HTTPConnection(host, port, timeout=30)
                    continue
                self.statuses[status] += 1
                if status == 200:
                    removed = not removed
                    self.applied += body["applied"]
                time.sleep(self.interval)
        finally:
            conn.close()


def _quantile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
    return ordered[rank]


def _load_phase(
    index, address, specs, *, clients: int, duration: float, update_interval: float
) -> dict:
    """Drive mixed query/update traffic; return client-side measurements."""
    deadline = time.perf_counter() + duration
    update_site = sorted(index.sites)[0]
    workers = [
        _ClientWorker(address, specs, deadline, seed=97 + i) for i in range(clients)
    ]
    updater = _UpdateWorker(address, update_site, deadline, update_interval)
    start = time.perf_counter()
    for worker in workers:
        worker.start()
    updater.start()
    for worker in workers:
        worker.join(timeout=duration + 60)
    updater.join(timeout=duration + 60)
    elapsed = time.perf_counter() - start

    latencies = [lat for worker in workers for lat in worker.latencies]
    statuses: Counter = Counter()
    for worker in workers:
        statuses.update(worker.statuses)
    ok = statuses.get(200, 0)
    return {
        "clients": clients,
        "duration_s": round(elapsed, 3),
        "queries_ok": ok,
        "query_statuses": {str(k): v for k, v in sorted(statuses.items(), key=str)},
        "updates_applied": updater.applied,
        "update_statuses": {str(k): v for k, v in sorted(updater.statuses.items(), key=str)},
        "qps": ok / elapsed if elapsed > 0 else 0.0,
        "p50_ms": _quantile(latencies, 0.5) * 1e3,
        "p90_ms": _quantile(latencies, 0.9) * 1e3,
        "p99_ms": _quantile(latencies, 0.99) * 1e3,
    }


def _measure(
    scale: str,
    *,
    clients: int | None = None,
    duration: float = 6.0,
    parity_only: bool = False,
) -> dict:
    """Serve a freshly built index; parity first, then (optionally) load."""
    bundle, index = _build_index(scale)
    specs = _spec_pool()
    service = PlacementService(index)
    record: dict = {
        "workload": bundle.name,
        "num_trajectories": bundle.num_trajectories,
        "usable_cpus": usable_cpu_count(),
        "specs": [spec.to_dict() for spec in specs],
        "parity": False,
        "target_qps": TARGET_QPS,
    }
    with serve_in_background(service, max_inflight=256, worker_threads=4) as handle:
        _assert_parity(index, handle.address, specs)
        record["parity"] = True
        if not parity_only:
            load = _load_phase(
                index,
                handle.address,
                specs,
                # load clients spend their time blocked on the socket, so —
                # unlike compute pools — a starved host still runs several
                clients=clients or max(4, capped_cpu_workers(8)),
                duration=duration,
                update_interval=0.25,
            )
            record.update(load)
            server_stats = handle.server.stats.as_dict()
            record["coalesced_specs"] = server_stats["coalesced_specs"]
            record["rejected_total"] = server_stats["rejected_total"]
            record["server_latency"] = server_stats["latency"]
            service_stats = service.stats.as_dict()
            record["cache_hits"] = service_stats["cache_hits"]
            record["greedy_runs"] = service_stats["greedy_runs"]
            # mixed traffic must never produce a non-backpressure failure
            bad = {
                status: count
                for status, count in load["query_statuses"].items()
                if status not in ("200", "503")
            }
            assert not bad, f"unexpected query responses under load: {bad}"
            assert load["updates_applied"] > 0, "no updates landed during the load phase"
    return record


def _report_rows(record: dict) -> list[dict]:
    return [
        {
            "workload": record["workload"],
            "clients": record.get("clients", 0),
            "qps": round(record.get("qps", 0.0), 1),
            "p50_ms": round(record.get("p50_ms", 0.0), 2),
            "p99_ms": round(record.get("p99_ms", 0.0), 2),
            "coalesced": record.get("coalesced_specs", 0),
            "updates": record.get("updates_applied", 0),
            "parity": record["parity"],
        }
    ]


def test_serving_smoke(tiny_bundle):
    """Fast CI check: HTTP answers byte-identical to in-process, tiny index."""
    problem = tiny_bundle.problem()
    index = problem.build_netclus_index(gamma=0.75, tau_min_km=0.4, tau_max_km=4.0)
    service = PlacementService(index)
    with serve_in_background(service) as handle:
        _assert_parity(index, handle.address, _spec_pool())


def test_serving_load_small(benchmark):
    """Mixed query/update load on the small workload; ≥ TARGET_QPS given ≥ 4 CPUs."""
    record = benchmark.pedantic(
        lambda: _measure("small", duration=6.0), rounds=1, iterations=1
    )
    print()
    print_table(_report_rows(record), title="HTTP serving — small workload")
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
    assert record["parity"]
    if record["usable_cpus"] >= 4:
        assert record["qps"] >= TARGET_QPS, record
    else:  # not enough cores to express the throughput; parity still held
        assert record["qps"] > 0.0


def build_parser() -> argparse.ArgumentParser:
    """The script-entry CLI (see ``benchmarks/conftest.py``'s registry)."""
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload, parity only — no load phase (the CI configuration)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=6.0,
        help="load-phase duration in seconds (full run only)",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=None,
        help="concurrent load clients (default: min(8, usable CPUs), at least 4)",
    )
    return parser


def main(argv=None) -> int:
    """Script entry point: ``--smoke`` for the CI-sized run."""
    args = build_parser().parse_args(argv)
    if args.smoke:
        record = _measure("tiny", parity_only=True)
        print(
            f"Serving smoke OK: parity held on {record['workload']} "
            f"({len(record['specs'])} specs byte-identical over HTTP)"
        )
    else:
        record = _measure("small", clients=args.clients, duration=args.duration)
        print_table(_report_rows(record), title="HTTP serving — small workload")
        BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
        print(f"Recorded in {BENCH_JSON} (qps {record['qps']:.1f})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
