"""Benchmark — bitset popcount kernels vs the dense and sparse engines.

The bitset engine (``repro.core.bitcov``) packs binary coverage into
``uint64`` blocks so the greedy's hot kernels become word-wise popcounts:
``marginal_gains`` is ``popcount(col & ~covered)``, ``absorb`` a bitwise
OR, ``gain_updates`` a popcount over a row-mask delta.  The contract is
twofold:

* **parity** — selections and per-trajectory utility vectors are
  byte-identical to the dense *and* sparse engines on every measured run,
  on every TOPS variant driver (cost, capacity, existing, market share),
  through the NetClus index on the sharded (``shards=4``) path and the
  warm coverage-cache path (``tools/check_bitset_parity.py`` re-asserts
  this in CI on a fresh build).
* **speedup** — single-core greedy over the Fig. 10 scalability workload
  must run ≥ 5× faster on the bitset engine than on the dense engine;
  the measurement is recorded in ``benchmarks/BENCH_bitset_kernels.json``.
  The CI smoke run asserts a conservative ≥ 3× on a synthetic binary
  workload sized so the kernels dominate.

``test_bitset_kernels_smoke`` is the fast CI check; running the module as
a script (``python benchmarks/bench_bitset_kernels.py [--smoke]``)
performs the same measurements without pytest.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core.bitcov import BitsetCoverageIndex
from repro.core.coverage import CoverageIndex, SparseCoverageIndex
from repro.core.greedy import IncGreedy, LazyGreedy
from repro.core.query import TOPSQuery
from repro.core.variants import (
    solve_tops_capacity,
    solve_tops_cost,
    solve_tops_market_share,
    solve_tops_with_existing,
)
from repro.datasets import beijing_like
from repro.experiments.reporting import print_table
from repro.experiments.runner import DEFAULT_TAU_RANGE
from repro.utils.timer import KernelTimer

BENCH_JSON = Path(__file__).parent / "BENCH_bitset_kernels.json"

#: greedy speedup over the dense engine on the Fig. 10 workload (full run)
TARGET_SPEEDUP = 5.0
#: conservative floor asserted by the CI smoke run (synthetic workload)
SMOKE_TARGET_SPEEDUP = 3.0

ENGINE_CLASSES = {
    "dense": CoverageIndex,
    "sparse": SparseCoverageIndex,
    "bitset": BitsetCoverageIndex,
}


def _synthetic_detours(
    m: int = 20_000, n: int = 300, density: float = 0.15, seed: int = 42
) -> np.ndarray:
    """A binary-coverage workload large enough for kernels to dominate."""
    rng = np.random.default_rng(seed)
    detours = rng.random((m, n)) * 2.0
    return np.where(rng.random((m, n)) < density, detours, np.inf)


def _build_engines(detours: np.ndarray, query: TOPSQuery) -> dict:
    """The same coverage on all three engines."""
    return {
        name: cls(detours, query.tau_km, query.preference)
        for name, cls in ENGINE_CLASSES.items()
    }


def _greedy_select(coverage, k: int):
    """The production solver dispatch: CELF for sparse, incremental else."""
    if getattr(coverage, "is_sparse", False):
        return LazyGreedy(coverage).select(k)
    return IncGreedy(coverage).select(k)


def _assert_selection_parity(selections: dict, label: str) -> None:
    """Every engine's (columns, utilities) must byte-compare equal."""
    reference_name = "dense"
    ref_columns, ref_utilities, _ = selections[reference_name]
    for name, (columns, utilities, _) in selections.items():
        assert columns == ref_columns, (
            f"{label}: {name} selected {columns} != {reference_name} {ref_columns}"
        )
        assert utilities.tobytes() == ref_utilities.tobytes(), (
            f"{label}: {name} per-trajectory utilities diverged from {reference_name}"
        )


def _assert_variant_parity(coverages: dict, query: TOPSQuery) -> None:
    """Cost/capacity/existing/market drivers agree byte-for-byte per engine."""
    num_sites = coverages["dense"].num_sites
    costs = 1.0 + (np.arange(num_sites) % 7)
    capacities = 1.0 + (np.arange(num_sites) % 5).astype(float)
    existing = [0, min(3, num_sites - 1)]
    drivers = {
        "cost": lambda cov: solve_tops_cost(cov, budget=25.0, site_costs=costs),
        "capacity": lambda cov: solve_tops_capacity(cov, query, capacities),
        "existing": lambda cov: solve_tops_with_existing(cov, query, existing),
        "market": lambda cov: solve_tops_market_share(cov, beta=0.5),
    }
    for variant, driver in drivers.items():
        reference = driver(coverages["dense"])
        for name in ("sparse", "bitset"):
            result = driver(coverages[name])
            assert result.sites == reference.sites, (
                f"variant={variant}: {name} selected {result.sites} "
                f"!= dense {reference.sites}"
            )
            assert (
                np.asarray(result.per_trajectory_utility).tobytes()
                == np.asarray(reference.per_trajectory_utility).tobytes()
            ), f"variant={variant}: {name} utilities diverged from dense"


def _assert_index_parity(bundle, query: TOPSQuery, shards: int = 4) -> None:
    """NetClus-index paths: warm covcache, auto resolution, sharded bitset."""
    problem = bundle.problem()
    index = problem.build_netclus_index(
        gamma=0.75,
        tau_min_km=DEFAULT_TAU_RANGE[0],
        tau_max_km=DEFAULT_TAU_RANGE[1],
    )
    # the sparse query warms the coverage cache; the bitset/auto queries
    # then materialise their views from the cached entries
    baseline = index.query(query, engine="sparse")
    configurations = [
        ("bitset", None),
        ("auto", None),
        ("bitset", shards),
        ("auto", shards),
    ]
    for engine, num_shards in configurations:
        result = index.query(query, engine=engine, shards=num_shards)
        label = f"index engine={engine} shards={num_shards}"
        assert result.sites == baseline.sites, (
            f"{label}: selected {result.sites} != sparse {baseline.sites}"
        )
        assert (
            np.asarray(result.per_trajectory_utility).tobytes()
            == np.asarray(baseline.per_trajectory_utility).tobytes()
        ), f"{label}: per-trajectory utilities diverged from sparse"


def _best_of(fn, rounds: int = 3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _measure_engines(detours: np.ndarray, query: TOPSQuery, rounds: int = 3) -> dict:
    """One row of greedy timings per engine (selections byte-verified)."""
    coverages = _build_engines(detours, query)
    seconds: dict[str, float] = {}
    selections: dict[str, tuple] = {}
    for name, coverage in coverages.items():
        seconds[name], selections[name] = _best_of(
            lambda coverage=coverage: _greedy_select(coverage, query.k), rounds
        )
    _assert_selection_parity(selections, f"k={query.k} tau={query.tau_km}")
    _assert_variant_parity(coverages, query)
    # profile one bitset pass through the kernel timer for the record
    timer = KernelTimer()
    coverages["bitset"].attach_kernel_timer(timer)
    _greedy_select(coverages["bitset"], query.k)
    coverages["bitset"].attach_kernel_timer(None)
    return {
        "num_trajectories": int(detours.shape[0]),
        "num_sites": int(detours.shape[1]),
        "k": query.k,
        "tau_km": query.tau_km,
        "dense_ms": 1000.0 * seconds["dense"],
        "sparse_ms": 1000.0 * seconds["sparse"],
        "bitset_ms": 1000.0 * seconds["bitset"],
        "speedup_vs_dense": seconds["dense"] / seconds["bitset"],
        "speedup_vs_sparse": seconds["sparse"] / seconds["bitset"],
        "bitset_storage_mb": coverages["bitset"].storage_bytes() / 2**20,
        "dense_storage_mb": coverages["dense"].storage_bytes() / 2**20,
        "kernel_calls": {
            name: calls for name, (calls, _) in timer.snapshot().items()
        },
    }


def _smoke_record(bundle) -> dict:
    """The CI-sized run: synthetic kernels + end-to-end parity on *bundle*."""
    query = TOPSQuery(k=10, tau_km=0.8)
    row = _measure_engines(_synthetic_detours(), query, rounds=1)
    _assert_index_parity(bundle, TOPSQuery(k=5, tau_km=0.8))
    return {
        "workload": "synthetic-binary",
        "rows": [row],
        "speedup": row["speedup_vs_dense"],
        "target_speedup": SMOKE_TARGET_SPEEDUP,
    }


def _fig10_record(rounds: int = 3) -> dict:
    """The full run over the Fig. 10 scalability workload."""
    bundle = beijing_like(scale="medium", seed=42)
    detours = bundle.problem().detour_matrix()
    query = TOPSQuery(k=10, tau_km=0.8)
    row = _measure_engines(detours, query, rounds=rounds)
    _assert_index_parity(bundle, TOPSQuery(k=5, tau_km=0.8))
    return {
        "workload": bundle.name,
        "rows": [row],
        "speedup": row["speedup_vs_dense"],
        "target_speedup": TARGET_SPEEDUP,
    }


def test_bitset_kernels_smoke(tiny_bundle):
    """Fast CI check: ≥ 3× on the synthetic workload, full parity suite."""
    record = _smoke_record(tiny_bundle)
    print()
    print_table(record["rows"], title="Bitset kernels — smoke (synthetic workload)")
    assert record["speedup"] >= SMOKE_TARGET_SPEEDUP, record


def test_bitset_kernels_fig10(benchmark):
    """≥ 5× single-core greedy vs dense on the Fig. 10 workload."""
    record = benchmark.pedantic(_fig10_record, rounds=1, iterations=1)
    print()
    print_table(record["rows"], title="Bitset kernels — Fig. 10 scalability workload")
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
    assert record["speedup"] >= TARGET_SPEEDUP, record


def build_parser() -> argparse.ArgumentParser:
    """The script-entry CLI (see ``benchmarks/conftest.py``'s registry)."""
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="synthetic workload + tiny-bundle parity (the CI configuration)",
    )
    return parser


def main(argv=None) -> int:
    """Script entry point: ``--smoke`` for the CI-sized run."""
    args = build_parser().parse_args(argv)
    if args.smoke:
        record = _smoke_record(beijing_like(scale="tiny", seed=42))
        print_table(record["rows"], title="Bitset kernels — smoke (synthetic workload)")
        assert record["speedup"] >= SMOKE_TARGET_SPEEDUP, record
    else:
        record = _fig10_record()
        print_table(record["rows"], title="Bitset kernels — Fig. 10 scalability workload")
        BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
        print(f"Recorded in {BENCH_JSON} (speedup {record['speedup']:.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
