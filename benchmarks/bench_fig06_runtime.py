"""Benchmark E5 — Fig. 6: query running time versus k and τ.

Benchmarks the two core online operations the figure compares — an Inc-Greedy
query (coverage build + greedy) and a NetClus query — at the paper's default
parameters, and prints the runtime sweep.
"""

from __future__ import annotations

from repro.core.query import TOPSQuery
from repro.experiments.figures import fig06_runtime
from repro.experiments.reporting import print_table


def test_inc_greedy_query(benchmark, small_context, default_query):
    """Flat-space Inc-Greedy query time (the paper's slow baseline)."""
    result = benchmark(lambda: small_context.run_inc_greedy(default_query))
    assert len(result.sites) == default_query.k


def test_netclus_query(benchmark, small_context, default_query):
    """NetClus query time — the headline speed-up of the paper."""
    result = benchmark(lambda: small_context.run_netclus(default_query))
    assert len(result.sites) == default_query.k


def test_netclus_query_large_tau(benchmark, small_context):
    """At larger τ NetClus switches to a coarser instance and stays fast."""
    query = TOPSQuery(k=5, tau_km=2.4)
    result = benchmark(lambda: small_context.run_netclus(query))
    assert len(result.sites) == query.k


def test_fig06_series(benchmark, small_context):
    rows = benchmark.pedantic(
        lambda: fig06_runtime.run_varying_tau(small_context, tau_values=(0.4, 0.8, 1.6), k=5),
        rounds=1,
        iterations=1,
    )
    print()
    print_table(rows, title="Fig. 6b — running time vs τ")
    for row in rows:
        assert row["netclus_runtime_s"] > 0
