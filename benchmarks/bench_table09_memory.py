"""Benchmark E6 — Table 9: memory footprint versus τ.

The artefact is a table of byte estimates; the benchmark measures the cost of
materialising the structures each algorithm needs at the default τ and checks
the paper's ordering (NetClus ≪ Inc-Greedy, trends with τ).
"""

from __future__ import annotations

from repro.experiments.figures import table09_memory
from repro.experiments.reporting import print_table


def test_coverage_materialisation(benchmark, small_context, default_query):
    """Building the O(mn) covering structures is Inc-Greedy's memory driver."""
    coverage = benchmark(lambda: small_context.coverage(default_query))
    assert coverage.covered_pairs() > 0


def test_table09_rows(benchmark, small_context):
    rows = benchmark.pedantic(
        lambda: table09_memory.run(tau_values=(0.2, 0.4, 0.8, 1.6), context=small_context),
        rounds=1,
        iterations=1,
    )
    print()
    print_table(rows, title="Table 9 — estimated memory footprint (MB) vs τ")
    for row in rows:
        assert row["netclus_mb"] < row["incg_mb"]
        # measured engine footprints: dense is the 8·m·n ceiling; the
        # bitset matrix is a fixed m·n/8 bits — 1/64 of dense — while
        # sparse scales with the covered-pair count (either side of
        # bitset depending on density, so no ordering asserted there)
        assert row["bitset_cov_mb"] < row["dense_cov_mb"]
        assert row["sparse_cov_mb"] > 0
    # Inc-Greedy's footprint grows with τ while NetClus's stays flat or shrinks
    assert rows[-1]["incg_mb"] >= rows[0]["incg_mb"]
    assert rows[-1]["netclus_mb"] <= rows[0]["netclus_mb"] * 1.5
    # the bitset footprint is τ-independent (same packed shape at every τ)
    assert rows[-1]["bitset_cov_mb"] == rows[0]["bitset_cov_mb"]
