"""Benchmark E15 — Table 12: the Jaccard-similarity clustering alternative."""

from __future__ import annotations

from repro.core.jaccard import jaccard_clustering
from repro.experiments.figures import table12_jaccard
from repro.experiments.reporting import print_table


def test_jaccard_clustering_default_tau(benchmark, small_context, default_query):
    coverage = small_context.coverage(default_query)
    result = benchmark.pedantic(
        lambda: jaccard_clustering(coverage, alpha=0.8), rounds=3, iterations=1
    )
    assert result.num_clusters >= 1


def test_table12_rows(benchmark, small_context):
    rows = benchmark.pedantic(
        lambda: table12_jaccard.run(tau_values=(0.2, 0.4, 0.8), context=small_context),
        rounds=1,
        iterations=1,
    )
    print()
    print_table(rows, title="Table 12 — Jaccard clustering vs τ (α = 0.8)")
    assert len(rows) == 3
