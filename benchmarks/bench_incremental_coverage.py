"""Benchmark — incremental coverage cache: cold vs warm queries, patch cost.

The coverage cache (``repro.core.covcache``) turns the per-query coverage
build into a one-time warm-up cost: steady-state queries reuse persisted,
incrementally patched coverage parts and run greedy with **zero** coverage
builds, including across dynamic updates (``apply_updates`` patches the
touched rows/columns of every cached part instead of invalidating it).
This benchmark measures the three numbers that claim rests on:

* **cold batch latency** — a cache-free service answering a mixed spec
  batch (every batch pays the full coverage build);
* **warm batch latency** — the same batch on a warmed cache (zero builds);
* **per-update patch cost** — the extra time ``apply_updates`` spends
  patching the cached parts, vs the same delta on a cache-free index, and
  the post-update warm query latency (still zero builds).

**Parity is asserted on every run**: warm answers byte-compare equal to
the cache-free service after every delta (site selections element-for-
element, per-trajectory utility vectors via ``np.ndarray.tobytes``).

``test_incremental_coverage_smoke`` is the fast CI check (tiny workload,
5 deltas); running the module as a script
(``python benchmarks/bench_incremental_coverage.py [--smoke]``) performs
the same measurements without pytest and records the full-size run in
``benchmarks/BENCH_incremental_coverage.json``.
"""

from __future__ import annotations

import argparse
import copy
import json
import time
from pathlib import Path

import numpy as np

from repro.core.netclus import UpdateBatch
from repro.datasets import beijing_like
from repro.experiments.reporting import print_table
from repro.service.placement import PlacementService
from repro.service.specs import QuerySpec
from repro.trajectory.generators import commuter_trajectories
from repro.trajectory.model import Trajectory
from repro.utils.parallel import usable_cpu_count

BENCH_JSON = Path(__file__).parent / "BENCH_incremental_coverage.json"


def _query_batch() -> list[QuerySpec]:
    """A mixed batch over several (τ, ψ) cache keys."""
    return [
        QuerySpec(k=5, tau_km=0.8),
        QuerySpec(k=10, tau_km=0.8),
        QuerySpec(k=5, tau_km=1.6),
        QuerySpec(k=5, tau_km=0.8, preference="linear"),
        QuerySpec(k=5, tau_km=1.6, preference="exponential"),
    ]


def _held_out_pool(problem, index, count: int) -> list[Trajectory]:
    extra = commuter_trajectories(problem.network, count, seed=777)
    next_id = max(index.trajectory_ids) + 1
    return [
        Trajectory.from_nodes(next_id + i, list(t.nodes), problem.network)
        for i, t in enumerate(extra)
    ]


def _delta_stream(rng, index, pool, num_ops):
    """``num_ops`` mixed update batches against the evolving index state."""
    pool = list(pool)
    removed_sites: list[int] = []
    batches = []
    for _ in range(num_ops):
        kind = int(rng.integers(0, 4))
        if kind == 0 and len(pool) >= 2:
            take = int(rng.integers(1, 4))
            batches.append(UpdateBatch(add_trajectories=pool[:take]))
            del pool[:take]
        elif kind == 1 and index.num_trajectories > 25:
            ids = list(index.trajectory_ids)
            picks = rng.choice(len(ids), size=int(rng.integers(1, 4)), replace=False)
            batches.append(
                UpdateBatch(remove_trajectories=[ids[int(p)] for p in sorted(picks)])
            )
        elif kind == 2 and removed_sites:
            batches.append(UpdateBatch(add_sites=list(removed_sites)))
            removed_sites.clear()
        elif len(index.sites) > 12:
            sites = sorted(index.sites)
            picks = rng.choice(len(sites), size=int(rng.integers(1, 3)), replace=False)
            victims = [sites[int(p)] for p in sorted(picks)]
            removed_sites.extend(victims)
            batches.append(UpdateBatch(remove_sites=victims))
    return batches


def _assert_parity(want_results, got_results, label: str) -> None:
    for want, got in zip(want_results, got_results):
        assert got.sites == want.sites, (
            f"{label}: selection diverged {got.sites} != {want.sites}"
        )
        assert (
            np.asarray(got.per_trajectory_utility).tobytes()
            == np.asarray(want.per_trajectory_utility).tobytes()
        ), f"{label}: per-trajectory utilities diverged"


def _best_of(fn, repeats: int) -> tuple[float, object]:
    best, payload = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best, payload = elapsed, result
    return best, payload


def _run(bundle, num_deltas: int, repeats: int = 3, engine: str = "sparse") -> dict:
    problem = bundle.problem()
    index = problem.build_netclus_index(gamma=0.75, tau_min_km=0.4, tau_max_km=8.0)
    pool = _held_out_pool(problem, index, max(2 * num_deltas, 10))
    specs = _query_batch()

    cold_index = copy.deepcopy(index)
    cold = PlacementService(cold_index, engine=engine)
    warm = PlacementService(index, engine=engine, coverage_cache=True)

    cold_seconds, cold_results = _best_of(
        lambda: cold.batch_query(specs, use_cache=False), repeats
    )
    warm.batch_query(specs, use_cache=False)  # warm-up: the only cold builds
    builds_after_warmup = warm.stats.coverage_builds
    warm_seconds, warm_results = _best_of(
        lambda: warm.batch_query(specs, use_cache=False), repeats
    )
    _assert_parity(cold_results, warm_results, "steady-state")

    rng = np.random.default_rng(2024)
    warm_update_s, plain_update_s = 0.0, 0.0
    post_update_query_s: list[float] = []
    for step, batch in enumerate(_delta_stream(rng, index, pool, num_deltas)):
        start = time.perf_counter()
        warm.apply_updates(batch)
        warm_update_s += time.perf_counter() - start
        start = time.perf_counter()
        cold.apply_updates(batch)
        plain_update_s += time.perf_counter() - start

        start = time.perf_counter()
        warm_results = warm.batch_query(specs, use_cache=False)
        post_update_query_s.append(time.perf_counter() - start)
        _assert_parity(
            cold.batch_query(specs, use_cache=False),
            warm_results,
            f"delta step {step}",
        )

    post_update_builds = warm.stats.coverage_builds - builds_after_warmup
    assert post_update_builds == 0, (
        f"warm service performed {post_update_builds} coverage builds after "
        "warm-up (expected exactly zero)"
    )
    cache_stats = warm.coverage_cache.stats()
    applied = max(len(post_update_query_s), 1)
    record = {
        "workload": bundle.name,
        "engine": engine,
        "num_trajectories": bundle.num_trajectories,
        "usable_cpus": usable_cpu_count(),
        "specs": [spec.to_dict() for spec in specs],
        "num_deltas": len(post_update_query_s),
        "cold_batch_s": round(cold_seconds, 5),
        "warm_batch_s": round(warm_seconds, 5),
        "warm_speedup": round(cold_seconds / warm_seconds, 2) if warm_seconds else 0.0,
        "mean_update_s_plain": round(plain_update_s / applied, 5),
        "mean_update_s_warm": round(warm_update_s / applied, 5),
        "mean_patch_overhead_s": round((warm_update_s - plain_update_s) / applied, 5),
        "mean_post_update_warm_query_s": round(
            sum(post_update_query_s) / applied, 5
        ),
        "post_update_coverage_builds": post_update_builds,
        "cache": {
            "parts": cache_stats["parts"],
            "patches": cache_stats["patches"],
            "invalidations": cache_stats["invalidations"],
            "patch_seconds": round(cache_stats["patch_seconds"], 4),
            "materialise_seconds": round(cache_stats["materialise_seconds"], 4),
        },
    }
    warm.close()
    cold.close()
    return record


def _rows(record: dict) -> list[dict]:
    return [
        {
            "metric": "batch latency (cold / warm)",
            "value": f"{record['cold_batch_s']:.4f}s / {record['warm_batch_s']:.4f}s",
            "note": f"{record['warm_speedup']}x warm speedup",
        },
        {
            "metric": "mean update (plain / warm)",
            "value": (
                f"{record['mean_update_s_plain']:.4f}s / "
                f"{record['mean_update_s_warm']:.4f}s"
            ),
            "note": f"+{record['mean_patch_overhead_s']:.4f}s patch overhead",
        },
        {
            "metric": "post-update warm query",
            "value": f"{record['mean_post_update_warm_query_s']:.4f}s",
            "note": f"{record['post_update_coverage_builds']} coverage builds",
        },
        {
            "metric": "cache",
            "value": (
                f"{record['cache']['parts']} parts, "
                f"{record['cache']['patches']} patches"
            ),
            "note": f"{record['cache']['invalidations']} invalidations",
        },
    ]


def test_incremental_coverage_smoke(tiny_bundle):
    """Fast CI check: tiny workload, 5 deltas, parity asserted throughout."""
    record = _run(tiny_bundle, num_deltas=5, repeats=1)
    print()
    print_table(_rows(record), title="Incremental coverage — smoke (tiny workload)")
    assert record["post_update_coverage_builds"] == 0
    assert record["cache"]["invalidations"] == 0


def build_parser() -> argparse.ArgumentParser:
    """The script-entry CLI (see ``benchmarks/conftest.py``'s registry)."""
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload, 5 deltas, parity only (the CI configuration)",
    )
    parser.add_argument(
        "--deltas", type=int, default=None, help="number of update batches"
    )
    parser.add_argument("--engine", default="sparse", choices=["dense", "sparse"])
    return parser


def main(argv=None) -> int:
    """Script entry point: ``--smoke`` for the CI-sized run."""
    args = build_parser().parse_args(argv)
    if args.smoke:
        bundle = beijing_like(scale="tiny", seed=42)
        record = _run(bundle, num_deltas=args.deltas or 5, repeats=1, engine=args.engine)
        print_table(_rows(record), title="Incremental coverage — smoke (tiny workload)")
    else:
        bundle = beijing_like(scale="small", seed=42)
        record = _run(
            bundle, num_deltas=args.deltas or 30, repeats=3, engine=args.engine
        )
        print_table(
            _rows(record), title="Incremental coverage — small serving workload"
        )
        BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
        print(
            f"Recorded in {BENCH_JSON} "
            f"(warm speedup {record['warm_speedup']:.2f}x, "
            f"patch overhead {record['mean_patch_overhead_s']:.4f}s/update)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
