"""Benchmark E2 — Table 8: effect of the number of FM sketches f.

Benchmarks FM-NetClus queries at small and large f and regenerates the
utility-error / speed-up rows.
"""

from __future__ import annotations

from repro.experiments.figures import table08_fm_sketches
from repro.experiments.reporting import print_table


def test_fm_netclus_query_f30(benchmark, small_context, default_query):
    """FM-NetClus query with the paper's chosen f = 30."""
    result = benchmark(
        lambda: small_context.netclus.query(default_query, use_fm_sketches=True, num_sketches=30)
    )
    assert len(result.sites) == default_query.k


def test_fm_netclus_query_f4(benchmark, small_context, default_query):
    """FM-NetClus query with very few copies (cheapest, least accurate)."""
    result = benchmark(
        lambda: small_context.netclus.query(default_query, use_fm_sketches=True, num_sketches=4)
    )
    assert len(result.sites) == default_query.k


def test_table08_rows(benchmark, small_context):
    rows = benchmark.pedantic(
        lambda: table08_fm_sketches.run(f_values=(1, 4, 10, 30), context=small_context),
        rounds=1,
        iterations=1,
    )
    print()
    print_table(rows, title="Table 8 — variation across number of FM sketches f")
    # with f = 30 copies the utility loss against exact NetClus is bounded
    final = rows[-1]
    assert final["rel_error_pct"] <= 25.0
